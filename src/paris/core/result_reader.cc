#include "paris/core/result_reader.h"

#include <algorithm>
#include <cstddef>

#include "paris/core/pass.h"
#include "paris/core/result_snapshot.h"
#include "paris/util/hash.h"

namespace paris::core {

namespace {

// Same structural bounds as the loader (result_snapshot.cc).
constexpr uint64_t kMaxIterations = 1 << 20;
constexpr uint64_t kMaxShards = 1 << 20;

util::Status Corrupt(const char* what) {
  return util::DataLossError(std::string("corrupt ") + what +
                             " in result snapshot");
}

}  // namespace

util::StatusOr<ResultReader> ResultReader::Open(
    const std::string& path, storage::SnapshotLoadMode mode) {
  ResultReader out;
  util::Status status = storage::LoadSnapshotFile(
      path, mode, kResultSnapshotMagic, kResultSnapshotVersion,
      kResultSnapshotVersion, "result snapshot",
      [&](storage::SnapshotReader& reader, uint32_t /*file_version*/) {
        util::Status loaded = out.LoadSections(reader);
        if (loaded.ok()) out.mapping_ = reader.view_owner();
        return loaded;
      });
  if (!status.ok()) return status;
  out.BuildIndexes();
  return out;
}

util::Status ResultReader::LoadSections(storage::SnapshotReader& reader) {
  // Run key: carried as metadata; no ontology pair to validate against.
  stats_.pair_fingerprint = reader.ReadU64();
  stats_.matcher = reader.ReadString();
  for (int i = 0; i < 5; ++i) reader.ReadDouble();  // thresholds
  reader.ReadU8();                                  // use_negative_evidence
  reader.ReadU8();                                  // use_full_equalities
  for (int i = 0; i < 4; ++i) reader.ReadU64();     // sampling caps
  reader.ReadU32();                                 // functionality_variant
  reader.ReadDouble();                              // dampening
  reader.ReadU8();                                  // use_relation_name_prior
  reader.ReadDouble();                              // name_prior_cap
  if (!reader.ok()) return Corrupt("run key");

  const uint64_t num_iterations = reader.ReadU64();
  if (!reader.ok() || num_iterations > kMaxIterations) {
    return Corrupt("iteration records");
  }
  stats_.num_iterations = static_cast<size_t>(num_iterations);
  for (uint64_t i = 0; i < num_iterations; ++i) {
    const uint32_t index = reader.ReadU32();
    reader.ReadDouble();  // seconds_instances
    reader.ReadDouble();  // seconds_relations
    reader.ReadDouble();  // change_fraction
    stats_.num_left_aligned = reader.ReadU64();
    if (!reader.ok() || index != i + 1) return Corrupt("iteration records");
  }
  stats_.converged_at = static_cast<int>(
      static_cast<int32_t>(reader.ReadU32()));
  reader.ReadDouble();  // seconds_classes
  stats_.seconds_total = reader.ReadDouble();
  if (!reader.ok() ||
      (stats_.converged_at != -1 &&
       (stats_.converged_at < 1 ||
        stats_.converged_at > static_cast<int>(num_iterations)))) {
    return Corrupt("iteration records");
  }

  // Instance equivalences: CSR over sorted left keys.
  if (!reader.ReadPodColumn(&inst_keys_) ||
      !reader.ReadPodColumn(&inst_offsets_) ||
      !reader.ReadPodColumn(&inst_others_) ||
      !reader.ReadPodColumn(&inst_probs_)) {
    return Corrupt("instance-equivalence section");
  }
  if (inst_offsets_.size() != inst_keys_.size() + 1 ||
      inst_offsets_.front() != 0 ||
      inst_offsets_.back() != inst_others_.size() ||
      inst_others_.size() != inst_probs_.size()) {
    return Corrupt("instance-equivalence section");
  }
  for (size_t i = 0; i < inst_keys_.size(); ++i) {
    if (i > 0 && inst_keys_[i] <= inst_keys_[i - 1]) {
      return Corrupt("instance-equivalence section");
    }
    const uint64_t begin = inst_offsets_[i];
    const uint64_t end = inst_offsets_[i + 1];
    if (end <= begin || end > inst_others_.size()) {
      return Corrupt("instance-equivalence section");
    }
    for (uint64_t j = begin; j < end; ++j) {
      if (!(inst_probs_[j] > 0.0) || inst_probs_[j] > 1.0) {
        return Corrupt("instance-equivalence section");
      }
    }
  }
  stats_.num_instance_keys = inst_keys_.size();
  stats_.num_instance_pairs = inst_others_.size();

  // Relation scores: sorted packed keys, both directions.
  stats_.relation_bootstrap = reader.ReadU8() != 0;
  stats_.theta = reader.ReadDouble();
  if (!reader.ok() || stats_.theta < 0.0 || stats_.theta > 1.0) {
    return Corrupt("relation-score section");
  }
  const auto load_rel_table = [&](storage::Column<uint64_t>* keys,
                                  storage::Column<double>* values) {
    if (!reader.ReadPodColumn(keys) || !reader.ReadPodColumn(values) ||
        keys->size() != values->size()) {
      return false;
    }
    for (size_t i = 0; i < keys->size(); ++i) {
      if (i > 0 && (*keys)[i] <= (*keys)[i - 1]) return false;
      if ((*values)[i] < 0.0 || (*values)[i] > 1.0) return false;
    }
    return true;
  };
  if (!load_rel_table(&rel_left_keys_, &rel_left_values_) ||
      !load_rel_table(&rel_right_keys_, &rel_right_values_)) {
    return Corrupt("relation-score section");
  }
  stats_.num_relation_entries = rel_left_keys_.size() + rel_right_keys_.size();

  // Class scores: parallel entry columns.
  if (!reader.ReadPodColumn(&class_subs_) ||
      !reader.ReadPodColumn(&class_supers_) ||
      !reader.ReadPodColumn(&class_values_) ||
      !reader.ReadPodColumn(&class_sides_)) {
    return Corrupt("class-score section");
  }
  if (class_supers_.size() != class_subs_.size() ||
      class_values_.size() != class_subs_.size() ||
      class_sides_.size() != class_subs_.size()) {
    return Corrupt("class-score section");
  }
  for (size_t i = 0; i < class_subs_.size(); ++i) {
    if (class_sides_[i] > 1 || class_values_[i] < 0.0 ||
        class_values_[i] > 1.0) {
      return Corrupt("class-score section");
    }
  }
  stats_.num_class_entries = class_subs_.size();

  // Partial-iteration checkpoint: consumed for framing (the trailer check
  // requires it) but not served — stats_.has_partial tells callers this
  // snapshot is a mid-run state.
  const uint8_t has_partial = reader.ReadU8();
  if (!reader.ok() || has_partial > 1) return Corrupt("partial section");
  stats_.has_partial = has_partial == 1;
  if (has_partial == 1) {
    reader.ReadU32();  // iteration
    const int pass = static_cast<int>(reader.ReadU32());
    const uint32_t num_shards = reader.ReadU32();
    const uint64_t num_cached = reader.ReadU64();
    if (!reader.ok() || (pass != kInstancePass && pass != kRelationPass) ||
        num_shards > kMaxShards || num_cached > num_shards) {
      return Corrupt("partial section");
    }
    for (uint64_t i = 0; i < num_cached; ++i) {
      reader.ReadU32();
      (void)reader.ReadString();
      if (!reader.ok()) return Corrupt("partial section");
    }
    if (pass == kRelationPass) {
      storage::Column<rdf::TermId> keys, others;
      storage::Column<uint64_t> offsets;
      storage::Column<double> probs;
      if (!reader.ReadPodColumn(&keys) || !reader.ReadPodColumn(&offsets) ||
          !reader.ReadPodColumn(&others) || !reader.ReadPodColumn(&probs)) {
        return Corrupt("partial section");
      }
    }
  }
  return util::OkStatus();
}

void ResultReader::BuildIndexes() {
  // Right-to-left transpose: the file only stores left keys, but "what
  // aligns with right entity Y" is half the traffic. Small relative to the
  // mapped columns (16 bytes per stored pair).
  right_index_.reserve(inst_others_.size());
  for (size_t i = 0; i < inst_keys_.size(); ++i) {
    for (uint64_t j = inst_offsets_[i]; j < inst_offsets_[i + 1]; ++j) {
      right_index_.push_back(
          TransposeEntry{inst_others_[j], inst_keys_[i], inst_probs_[j]});
    }
  }
  std::sort(right_index_.begin(), right_index_.end(),
            [](const TransposeEntry& a, const TransposeEntry& b) {
              if (a.right != b.right) return a.right < b.right;
              if (a.prob != b.prob) return a.prob > b.prob;
              return a.left < b.left;
            });

  // Class entries arrive in shard-merge order, not sorted by sub; index
  // their positions by (side, sub, desc score, super).
  class_index_.resize(class_subs_.size());
  for (uint32_t i = 0; i < class_index_.size(); ++i) class_index_[i] = i;
  std::sort(class_index_.begin(), class_index_.end(),
            [this](uint32_t a, uint32_t b) {
              if (class_sides_[a] != class_sides_[b]) {
                return class_sides_[a] > class_sides_[b];  // left side first
              }
              if (class_subs_[a] != class_subs_[b]) {
                return class_subs_[a] < class_subs_[b];
              }
              if (class_values_[a] != class_values_[b]) {
                return class_values_[a] > class_values_[b];
              }
              return class_supers_[a] < class_supers_[b];
            });
}

ResultReader::EntityCandidates ResultReader::LeftEntity(
    rdf::TermId left) const {
  const std::span<const rdf::TermId> keys = inst_keys_.span();
  const auto it = std::lower_bound(keys.begin(), keys.end(), left);
  if (it == keys.end() || *it != left) return {};
  const size_t i = static_cast<size_t>(it - keys.begin());
  const uint64_t begin = inst_offsets_[i];
  const uint64_t end = inst_offsets_[i + 1];
  return EntityCandidates{
      inst_others_.span().subspan(begin, end - begin),
      inst_probs_.span().subspan(begin, end - begin)};
}

std::vector<ResultReader::EntityMatch> ResultReader::RightEntity(
    rdf::TermId right) const {
  const auto lo = std::lower_bound(
      right_index_.begin(), right_index_.end(), right,
      [](const TransposeEntry& e, rdf::TermId key) { return e.right < key; });
  const auto hi = std::upper_bound(
      lo, right_index_.end(), right,
      [](rdf::TermId key, const TransposeEntry& e) { return key < e.right; });
  std::vector<EntityMatch> out;
  out.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    out.push_back(EntityMatch{it->left, it->prob});
  }
  return out;
}

std::vector<ResultReader::RelationMatch> ResultReader::RelationSupers(
    rdf::RelId sub, bool sub_is_left) const {
  std::vector<RelationMatch> out;
  if (sub == 0) return out;
  // Pr(r subOf r') = Pr(r-1 subOf r'-1): stored sub ids are canonical
  // (positive); an inverse query flips both sides.
  const bool inverted = sub < 0;
  const std::span<const uint64_t> keys =
      sub_is_left ? rel_left_keys_.span() : rel_right_keys_.span();
  const std::span<const double> values =
      sub_is_left ? rel_left_values_.span() : rel_right_values_.span();
  // All packed keys of one sub are contiguous in the sorted column. The
  // canonical (positive) sub's ZigZag code is Encode(sub) rounded up to
  // even, since Encode(-r) == Encode(r) - 1 for r > 0. Spelled via parity
  // instead of the obvious Encode(inverted ? -sub : sub): GCC 12.2 expands
  // that ABS_EXPR into a cmov whose source operand it already clobbered
  // (x86 `neg; mov; cmovns` over one register), returning -sub for every
  // positive sub at -O2.
  const uint32_t encoded = (RelationScores::Encode(sub) + 1u) & ~1u;
  const uint64_t lo_key = util::PackPair(encoded, 0);
  const uint64_t hi_key = util::PackPair(encoded + 1, 0);
  const auto lo = std::lower_bound(keys.begin(), keys.end(), lo_key);
  const auto hi = std::lower_bound(lo, keys.end(), hi_key);
  out.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    const size_t i = static_cast<size_t>(it - keys.begin());
    const rdf::RelId super =
        RelationScores::Decode(util::UnpackSecond(*it));
    double score = values[i];
    if (stats_.relation_bootstrap) score = std::max(score, stats_.theta);
    out.push_back(RelationMatch{inverted ? -super : super, score});
  }
  std::sort(out.begin(), out.end(),
            [](const RelationMatch& a, const RelationMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.super < b.super;
            });
  return out;
}

std::vector<ResultReader::ClassMatch> ResultReader::ClassSupers(
    rdf::TermId sub, bool sub_is_left) const {
  const uint8_t side = sub_is_left ? 1 : 0;
  const auto key_less = [this](uint32_t pos, std::pair<uint8_t, rdf::TermId> k) {
    if (class_sides_[pos] != k.first) return class_sides_[pos] > k.first;
    return class_subs_[pos] < k.second;
  };
  const auto less_key = [this](std::pair<uint8_t, rdf::TermId> k, uint32_t pos) {
    if (class_sides_[pos] != k.first) return k.first > class_sides_[pos];
    return k.second < class_subs_[pos];
  };
  const auto lo = std::lower_bound(class_index_.begin(), class_index_.end(),
                                   std::make_pair(side, sub), key_less);
  const auto hi = std::upper_bound(lo, class_index_.end(),
                                   std::make_pair(side, sub), less_key);
  std::vector<ClassMatch> out;
  out.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    out.push_back(ClassMatch{class_supers_[*it], class_values_[*it]});
  }
  return out;
}

}  // namespace paris::core
