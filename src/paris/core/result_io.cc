#include "paris/core/result_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "paris/util/fs.h"
#include "paris/util/string_util.h"

namespace paris::core {

void WriteInstanceAlignment(const InstanceEquivalences& equiv,
                            const ontology::Ontology& left,
                            const ontology::Ontology& right,
                            std::ostream& out) {
  out << "# paris instance alignment: left\tright\tprobability\n";
  // Deterministic output order: sort by left IRI.
  std::map<std::string, const Candidate*> sorted;
  for (const auto& [l, candidate] : equiv.max_left()) {
    sorted.emplace(left.TermName(l), &candidate);
  }
  for (const auto& [name, candidate] : sorted) {
    out << name << "\t" << right.TermName(candidate->other) << "\t"
        << candidate->prob << "\n";
  }
}

void WriteRelationAlignment(const RelationScores& scores,
                            const ontology::Ontology& left,
                            const ontology::Ontology& right,
                            std::ostream& out) {
  out << "# paris relation alignment: sub\tsuper\tscore\tside\n";
  std::vector<std::string> lines;
  for (const auto& e : scores.Entries()) {
    const auto& sub_onto = e.sub_is_left ? left : right;
    const auto& super_onto = e.sub_is_left ? right : left;
    std::ostringstream line;
    line << sub_onto.RelationName(e.sub) << "\t"
         << super_onto.RelationName(e.super) << "\t" << e.score << "\t"
         << (e.sub_is_left ? "L" : "R");
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  for (const auto& line : lines) out << line << "\n";
}

void WriteClassAlignment(const ClassScores& scores,
                         const ontology::Ontology& left,
                         const ontology::Ontology& right, std::ostream& out) {
  out << "# paris class alignment: sub\tsuper\tscore\tside\n";
  std::vector<std::string> lines;
  for (const auto& e : scores.entries()) {
    const auto& sub_onto = e.sub_is_left ? left : right;
    const auto& super_onto = e.sub_is_left ? right : left;
    std::ostringstream line;
    line << sub_onto.TermName(e.sub) << "\t" << super_onto.TermName(e.super)
         << "\t" << e.score << "\t" << (e.sub_is_left ? "L" : "R");
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  for (const auto& line : lines) out << line << "\n";
}

util::Status WriteAlignmentFiles(const AlignmentResult& result,
                                 const ontology::Ontology& left,
                                 const ontology::Ontology& right,
                                 const std::string& prefix) {
  struct Section {
    std::string suffix;
    std::function<void(std::ostream&)> write;
  };
  const std::vector<Section> sections = {
      {"_instances.tsv",
       [&](std::ostream& out) {
         WriteInstanceAlignment(result.instances, left, right, out);
       }},
      {"_relations.tsv",
       [&](std::ostream& out) {
         WriteRelationAlignment(result.relations, left, right, out);
       }},
      {"_classes.tsv",
       [&](std::ostream& out) {
         WriteClassAlignment(result.classes, left, right, out);
       }},
  };
  for (const Section& section : sections) {
    const std::string path = prefix + section.suffix;
    util::AtomicFileWriter out(path);
    section.write(out.stream());
    util::Status status = out.Commit();
    if (!status.ok()) return status;
  }
  return util::OkStatus();
}

namespace {

// Minimal XML escaping for IRIs/attribute content.
std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void WriteOaeiAlignment(const InstanceEquivalences& equiv,
                        const ontology::Ontology& left,
                        const ontology::Ontology& right, std::ostream& out) {
  out << "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"
      << "<rdf:RDF xmlns=\"http://knowledgeweb.semanticweb.org/heterogeneity/"
         "alignment\"\n"
      << "         xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\""
         ">\n"
      << "<Alignment>\n"
      << "  <xml>yes</xml>\n  <level>0</level>\n  <type>11</type>\n";
  std::map<std::string, const Candidate*> sorted;
  for (const auto& [l, candidate] : equiv.max_left()) {
    sorted.emplace(left.TermName(l), &candidate);
  }
  for (const auto& [name, candidate] : sorted) {
    out << "  <map><Cell>\n"
        << "    <entity1 rdf:resource=\"" << XmlEscape(name) << "\"/>\n"
        << "    <entity2 rdf:resource=\""
        << XmlEscape(right.TermName(candidate->other)) << "\"/>\n"
        << "    <measure rdf:datatype=\"xsd:float\">" << candidate->prob
        << "</measure>\n"
        << "    <relation>=</relation>\n"
        << "  </Cell></map>\n";
  }
  out << "</Alignment>\n</rdf:RDF>\n";
}

util::StatusOr<InstanceEquivalences> ReadInstanceAlignment(
    std::istream& in, const rdf::TermPool& pool) {
  InstanceEquivalences equiv;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::Split(trimmed, '\t');
    if (fields.size() != 3) {
      return util::InvalidArgumentError(
          "line " + std::to_string(line_number) + ": expected 3 fields");
    }
    const auto left = pool.Find(fields[0], rdf::TermKind::kIri);
    const auto right = pool.Find(fields[1], rdf::TermKind::kIri);
    if (!left.has_value() || !right.has_value()) {
      return util::NotFoundError("line " + std::to_string(line_number) +
                                 ": unknown IRI");
    }
    char* end = nullptr;
    const std::string prob_str(fields[2]);
    const double prob = std::strtod(prob_str.c_str(), &end);
    if (end == prob_str.c_str() || prob < 0.0 || prob > 1.0) {
      return util::InvalidArgumentError(
          "line " + std::to_string(line_number) + ": bad probability");
    }
    equiv.Set(*left, {Candidate{*right, prob}});
  }
  equiv.Finalize();
  return equiv;
}

}  // namespace paris::core
