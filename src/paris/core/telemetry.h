#ifndef PARIS_CORE_TELEMETRY_H_
#define PARIS_CORE_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "paris/core/equiv.h"
#include "paris/core/pass.h"
#include "paris/rdf/term.h"

namespace paris::core {

// Upper bounds of the score-delta histogram buckets: |Pr_k(x≡x') -
// Pr_{k-1}(x≡x')| for entities assigned in consecutive iterations. Fixed
// (never derived from the data) so histograms are comparable across runs
// and mergeable across workers.
inline constexpr double kScoreDeltaBounds[] = {
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1.0};
inline constexpr size_t kScoreDeltaBuckets =
    sizeof(kScoreDeltaBounds) / sizeof(kScoreDeltaBounds[0]) + 1;

// What one fixpoint iteration changed about the maximal instance
// assignment, per entity and per shard — the measurement groundwork for the
// semi-naive worklist (ROADMAP item 1: a delta-driven iteration needs to
// know how many entities actually move each round, and in which shards).
// Cheap to compute (one serial scan over the left instance list) and always
// recorded; not serialized in result snapshots (like PassTimings).
struct ConvergenceTelemetry {
  // Left instances whose maximal assignment, vs the previous iteration:
  size_t changed = 0;  // points at a different counterpart
  size_t gained = 0;   // was unassigned, now assigned
  size_t dropped = 0;  // was assigned, now unassigned
  size_t stable = 0;   // same counterpart (score may have moved)
  // |score delta| of every instance assigned in both iterations (stable +
  // changed), binned by kScoreDeltaBounds; last bucket is overflow.
  std::vector<uint64_t> score_delta_counts;
  // changed + gained + dropped per instance-pass shard (the shard layout
  // over the left instance list) — the per-shard work a semi-naive
  // iteration would actually have.
  std::vector<uint32_t> shard_changed;

  size_t num_changed() const { return changed + gained + dropped; }

  friend bool operator==(const ConvergenceTelemetry&,
                         const ConvergenceTelemetry&) = default;
};

// Compares `current` against `previous` over `left_instances`; `layout` is
// the instance-pass shard layout (ShardLayout::Make over the instance list
// with the run's num_shards), attributing each instance to its shard. Both
// stores must be finalized.
ConvergenceTelemetry ComputeConvergenceTelemetry(
    const std::vector<rdf::TermId>& left_instances, const ShardLayout& layout,
    const InstanceEquivalences& previous, const InstanceEquivalences& current);

}  // namespace paris::core

#endif  // PARIS_CORE_TELEMETRY_H_
