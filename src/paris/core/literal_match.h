#ifndef PARIS_CORE_LITERAL_MATCH_H_
#define PARIS_CORE_LITERAL_MATCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "paris/core/equiv.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"

namespace paris::core {

// Literal equality functions (§5.3 of the paper). The probability that two
// literals are equal is known a priori and clamped; a matcher maps a source
// literal to the target-ontology literals it could be equal to, with
// probabilities. Matchers are directional: `IndexTarget` is called once with
// the ontology whose literals are candidate matches.
class LiteralMatcher {
 public:
  virtual ~LiteralMatcher() = default;

  // Builds the candidate index over the target ontology's literals.
  virtual void IndexTarget(const ontology::Ontology& target) = 0;

  // Appends the target literals equivalent to `literal` (a literal term of
  // the shared pool) with Pr > 0, sorted best-first.
  virtual void Match(rdf::TermId literal,
                     std::vector<Candidate>* out) const = 0;

  virtual std::string name() const = 0;
};

// The paper's default: Pr(x ≡ y) = 1 iff the lexical forms are identical
// (datatype/dimension already normalized away at parse time), else 0.
class IdentityLiteralMatcher : public LiteralMatcher {
 public:
  void IndexTarget(const ontology::Ontology& target) override;
  void Match(rdf::TermId literal, std::vector<Candidate>* out) const override;
  std::string name() const override { return "identity"; }

 private:
  const rdf::TripleStore* target_store_ = nullptr;
};

// The §6.3 variant: normalize both strings by removing all non-alphanumeric
// characters and lowercasing; Pr = 1 iff the normalizations coincide. Makes
// "213/467-1108" equal to "213-467-1108".
class NormalizingLiteralMatcher : public LiteralMatcher {
 public:
  void IndexTarget(const ontology::Ontology& target) override;
  void Match(rdf::TermId literal, std::vector<Candidate>* out) const override;
  std::string name() const override { return "normalized-identity"; }

 private:
  const rdf::TermPool* pool_ = nullptr;
  std::unordered_map<std::string, std::vector<rdf::TermId>> buckets_;
};

// An "improved string comparison technique" (§6.4 suggests one would raise
// precision/recall further): candidates are generated from a character
// trigram inverted index over normalized target literals and scored by
// normalized edit similarity. Pr = similarity if ≥ `min_similarity`.
class FuzzyLiteralMatcher : public LiteralMatcher {
 public:
  explicit FuzzyLiteralMatcher(double min_similarity = 0.85,
                               size_t max_candidates = 4)
      : min_similarity_(min_similarity), max_candidates_(max_candidates) {}

  void IndexTarget(const ontology::Ontology& target) override;
  void Match(rdf::TermId literal, std::vector<Candidate>* out) const override;
  std::string name() const override { return "fuzzy-trigram"; }

 private:
  double min_similarity_;
  size_t max_candidates_;
  const rdf::TermPool* pool_ = nullptr;
  std::vector<rdf::TermId> target_literals_;
  std::vector<std::string> normalized_;  // parallel to target_literals_
  std::unordered_map<uint32_t, std::vector<uint32_t>> trigram_index_;
};

// Word-level matcher: two literals are equal with probability equal to the
// Jaccard similarity of their (normalized) token sets, if it reaches
// `min_similarity`. Robust to word reordering ("Sugata Sanshiro" vs
// "Sanshiro Sugata" score 1.0) where edit distance is not.
class TokenJaccardMatcher : public LiteralMatcher {
 public:
  explicit TokenJaccardMatcher(double min_similarity = 0.6,
                               size_t max_candidates = 4)
      : min_similarity_(min_similarity), max_candidates_(max_candidates) {}

  void IndexTarget(const ontology::Ontology& target) override;
  void Match(rdf::TermId literal, std::vector<Candidate>* out) const override;
  std::string name() const override { return "token-jaccard"; }

 private:
  static std::vector<std::string> Tokens(std::string_view s);

  double min_similarity_;
  size_t max_candidates_;
  const rdf::TermPool* pool_ = nullptr;
  std::vector<rdf::TermId> target_literals_;
  std::vector<std::vector<std::string>> target_tokens_;
  std::unordered_map<std::string, std::vector<uint32_t>> token_index_;
};

// Factory so the `Aligner` can build one matcher per direction.
using LiteralMatcherFactory =
    std::function<std::unique_ptr<LiteralMatcher>()>;

LiteralMatcherFactory IdentityMatcherFactory();
LiteralMatcherFactory NormalizingMatcherFactory();
LiteralMatcherFactory FuzzyMatcherFactory(double min_similarity = 0.85,
                                          size_t max_candidates = 4);

}  // namespace paris::core

#endif  // PARIS_CORE_LITERAL_MATCH_H_
