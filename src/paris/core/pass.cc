#include "paris/core/pass.h"

#include <atomic>
#include <mutex>

namespace paris::core {

ShardRunOutcome RunPassShards(
    Pass& pass, size_t num_shards, IterationContext& ctx,
    util::ThreadPool* pool,
    const std::function<bool(const ShardProgress&)>& gate,
    const std::vector<uint8_t>* already_done) {
  ShardRunOutcome outcome;
  outcome.completed.assign(num_shards, 0);
  if (already_done != nullptr && already_done->size() == num_shards) {
    // Checkpoint-cached shards are marked up front (before any worker
    // starts), so the parallel loop reads `completed` without races: the
    // only writes during the loop are each worker's own shard slot.
    outcome.completed = *already_done;
    for (uint8_t done : outcome.completed) outcome.num_completed += done;
  }
  if (num_shards == 0) return outcome;

  std::atomic<bool> stop{false};
  std::mutex mutex;
  size_t num_completed = outcome.num_completed;

  util::ForRangeShards(
      pool, num_shards, [&](size_t shard, size_t worker) -> bool {
        if (outcome.completed[shard]) {
          return !stop.load(std::memory_order_acquire);
        }
        if (stop.load(std::memory_order_acquire)) return false;
        if (ctx.obs.trace != nullptr) {
          // The only per-shard instrumentation cost when tracing is off is
          // the branch above; the span (two clock reads + one buffer
          // append into the worker's own slot) exists only when it is on.
          obs::Span span(ctx.obs.trace, worker, "shard", pass.name(),
                         ctx.iteration, static_cast<int64_t>(shard));
          pass.RunShard(shard, worker, ctx);
        } else {
          pass.RunShard(shard, worker, ctx);
        }
        bool keep_going = true;
        {
          std::lock_guard<std::mutex> lock(mutex);
          outcome.completed[shard] = 1;
          ++num_completed;
          if (gate) {
            ShardProgress progress;
            progress.pass = pass.name();
            progress.iteration = ctx.iteration;
            progress.shard = shard;
            progress.num_shards = num_shards;
            progress.num_completed = num_completed;
            keep_going = gate(progress);
          }
        }
        if (!keep_going) stop.store(true, std::memory_order_release);
        return keep_going;
      });

  outcome.num_completed = num_completed;
  outcome.stopped = stop.load(std::memory_order_acquire);
  return outcome;
}

}  // namespace paris::core
