#include "paris/core/worklist.h"

#include <algorithm>

namespace paris::core {

SemiNaiveTracker::SemiNaiveTracker(const ontology::Ontology& left,
                                   const ontology::Ontology& right)
    : left_(left), right_(right) {
  instance_index_.reserve(left_.instances().size());
  for (size_t i = 0; i < left_.instances().size(); ++i) {
    instance_index_.emplace(left_.instances()[i], static_cast<uint32_t>(i));
  }
}

void SemiNaiveTracker::Reset() {
  have_instance_diff_ = false;
  have_score_diff_ = false;
  changed_left_.clear();
  changed_right_.clear();
  changed_left_rels_.clear();
}

void SemiNaiveTracker::ObserveInstances(const InstanceEquivalences& before,
                                        const InstanceEquivalences& after) {
  changed_left_.clear();
  changed_right_.clear();
  before.DiffLeftTerms(after, &changed_left_);
  before.DiffRightTerms(after, &changed_right_);
  have_instance_diff_ = true;
}

void SemiNaiveTracker::ObserveScores(const RelationScores& before,
                                     const RelationScores& after) {
  changed_left_rels_.clear();
  if (before.bootstrap() || after.bootstrap()) {
    have_score_diff_ = false;
    return;
  }
  before.DiffLeftRelations(after, &changed_left_rels_);
  have_score_diff_ = true;
}

bool SemiNaiveTracker::ExactFixpoint(const InstanceEquivalences& prev,
                                     const InstanceEquivalences& current,
                                     const RelationScores& prev_scores,
                                     const RelationScores& current_scores) const {
  if (prev_scores.bootstrap() || current_scores.bootstrap()) return false;
  std::vector<rdf::TermId> terms;
  prev.DiffLeftTerms(current, &terms);
  if (!terms.empty()) return false;
  prev.DiffRightTerms(current, &terms);
  if (!terms.empty()) return false;
  std::vector<rdf::RelId> rels;
  prev_scores.DiffLeftRelations(current_scores, &rels);
  return rels.empty();
}

void SemiNaiveTracker::SeedRelationWorklist(SemiNaiveWorklist* wl) const {
  wl->relations_active = false;
  wl->num_dirty_relations = 0;
  if (!have_instance_diff_) return;
  wl->dirty_left_rels.assign(left_.num_relations(), 0);
  wl->dirty_right_rels.assign(right_.num_relations(), 0);
  auto mark = [wl](const ontology::Ontology& onto,
                   std::span<const rdf::TermId> terms,
                   std::vector<uint8_t>& bits) {
    for (rdf::TermId t : terms) {
      for (const rdf::Fact& f : onto.FactsAbout(t)) {
        const size_t slot = static_cast<size_t>(rdf::BaseRel(f.rel)) - 1;
        if (bits[slot] == 0) {
          bits[slot] = 1;
          ++wl->num_dirty_relations;
        }
      }
    }
  };
  mark(left_, changed_left_, wl->dirty_left_rels);
  mark(right_, changed_right_, wl->dirty_right_rels);
  wl->relations_active = true;
}

void SemiNaiveTracker::MarkInstance(rdf::TermId t,
                                    SemiNaiveWorklist* wl) const {
  auto it = instance_index_.find(t);
  if (it == instance_index_.end()) return;  // literal or right-only term
  if (wl->dirty_instances[it->second] == 0) {
    wl->dirty_instances[it->second] = 1;
    ++wl->num_dirty_instances;
  }
}

void SemiNaiveTracker::MarkInstanceAndNeighbors(rdf::TermId t,
                                                SemiNaiveWorklist* wl) const {
  MarkInstance(t, wl);
  for (const rdf::Fact& f : left_.FactsAbout(t)) MarkInstance(f.other, wl);
}

void SemiNaiveTracker::SeedInstanceWorklist(SemiNaiveWorklist* wl) const {
  wl->instances_active = false;
  wl->num_dirty_instances = 0;
  if (!have_instance_diff_ || !have_score_diff_) return;
  wl->dirty_instances.assign(left_.instances().size(), 0);
  // (a) A fact neighbor's equivalence view moved. Inverse statements are
  // materialized, so FactsAbout(t) reaches t's neighbors in both argument
  // positions — adjacency is symmetric and "neighbors of changed terms"
  // covers "instances with a changed neighbor".
  for (rdf::TermId t : changed_left_) {
    for (const rdf::Fact& f : left_.FactsAbout(t)) MarkInstance(f.other, wl);
  }
  // (b) An incident relation re-scored: every member of the relation reads
  // its entries.
  for (rdf::RelId rel : changed_left_rels_) {
    for (const rdf::TermPair& p : left_.store().PairsOf(rel)) {
      MarkInstance(p.first, wl);
      MarkInstance(p.second, wl);
    }
  }
  wl->instances_active = true;
}

void SemiNaiveTracker::SeedRealignInstanceWorklist(
    const InstanceEquivalences& base, const LiteralMatcher* matcher_r2l,
    std::span<const rdf::TermId> left_touched,
    std::span<const rdf::TermId> right_touched, SemiNaiveWorklist* wl) const {
  wl->dirty_instances.assign(left_.instances().size(), 0);
  wl->num_dirty_instances = 0;
  // Left cone: a touched term's packed statements changed; the term itself
  // and every neighbor reads them during expansion.
  for (rdf::TermId t : left_touched) MarkInstanceAndNeighbors(t, wl);
  // Right cone: a touched right term's packed statements changed; the left
  // instances whose expansions reach it are its known counterparts (and the
  // left literals the matcher maps to it), and evidence flows from there to
  // their fact neighbors.
  std::vector<Candidate> scratch;
  for (rdf::TermId z : right_touched) {
    for (const Candidate& c : base.RightToLeft(z)) {
      MarkInstanceAndNeighbors(c.other, wl);
    }
    if (matcher_r2l != nullptr && right_.pool().IsLiteral(z)) {
      scratch.clear();
      matcher_r2l->Match(z, &scratch);
      for (const Candidate& c : scratch) MarkInstanceAndNeighbors(c.other, wl);
    }
  }
  wl->instances_active = true;
}

}  // namespace paris::core
