#ifndef PARIS_CORE_INSTANCE_ALIGN_H_
#define PARIS_CORE_INSTANCE_ALIGN_H_

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "paris/core/config.h"
#include "paris/core/direction.h"
#include "paris/core/equiv.h"
#include "paris/core/pass.h"
#include "paris/core/relation_scores.h"
#include "paris/ontology/ontology.h"

namespace paris::core {

// Per-worker scratch of the instance pass (defined in instance_align.cc),
// owned by the IterationContext and bound to `scratch_` in Prepare — the
// serial phase, per the ScratchSlots contract.
struct InstanceShardScratch;

// The instance-equivalence pass (§4.1/§4.2 of the paper), one pipeline
// stage per fixpoint iteration.
//
// For every instance x of the left ontology, computes Pr(x ≡ x') for the
// right-ontology candidates x' reachable through shared evidence, using the
// neighborhood-walk optimization of §5.2: traverse the statements r(x, y),
// expand y to its known equivalents y', and visit the statements r'(x', y')
// of the right ontology. Probabilities follow Eq. (13) (positive evidence),
// optionally multiplied by the negative-evidence factor of Eq. (14).
//
// Inputs (bound in Prepare): `ctx.previous` — the *previous* iteration's
// equivalence store — and `ctx.rel_scores` — Pr(r ⊆ r'), the θ-bootstrap
// table in the first iteration. Shards partition the left instance list;
// every shard writes only its instances' candidate slots, so the pass
// parallelizes without locks. Merge assembles the slots in instance order
// into `ctx.current` and finalizes it (transpose + maximal assignments),
// reproducing the exact store a serial whole-ontology sweep would build.
//
// This pass dominates wall time at YAGO scale, which is why cancellation
// is polled between its shards: SaveShard/LoadShard persist one shard's
// candidate lists so a cancelled pass resumes without recomputing them.
class InstancePass final : public Pass {
 public:
  const char* name() const override { return "instance"; }

  // Semi-naive reuse (core/worklist.h): when `ctx.config->semi_naive` is
  // set, Merge *copies* the candidate slots into `ctx.current` instead of
  // draining them, and a later Prepare — if `ctx.worklist` has an active
  // instance set — puts the pass in reuse mode: RunShard skips clean
  // instances, whose retained slots still hold exactly what this iteration
  // would recompute (the worklist's dirty criterion covers every input).
  // Slots are retained in TWO generations, alternating per iteration, and
  // an iteration reuses the slots of the previous *same-parity* iteration
  // (two back) — matching the worklist, whose diffs compare same-parity
  // states. In floating point the fixpoint attractor is an exact cycle of
  // period 1 or 2 (the assignment oscillation of §5.2 survives in the low
  // mantissa bits even when maximal assignments stabilize), and the
  // same-parity scheme drains the worklist on both: a consecutive-state
  // diff never goes empty against a 2-cycle. Shard payloads are
  // unaffected: the active generation's slots always hold the full output,
  // so a semi-naive checkpoint is byte-identical to an exhaustive one.

  // Seeds both generations of retained slots from a completed run's final
  // equivalence store so the *first* iterations can already reuse
  // (incremental re-alignment, Aligner::Realign). Serial; call once before
  // the run starts.
  void SeedResults(const ontology::Ontology& left,
                   const InstanceEquivalences& seed);

  size_t Prepare(IterationContext& ctx) override;
  void RunShard(size_t shard, size_t worker, IterationContext& ctx) override;
  void Merge(IterationContext& ctx) override;
  void SaveShard(size_t shard, std::string* out) const override;
  bool LoadShard(size_t shard, std::string_view bytes,
                 IterationContext& ctx) override;

 private:
  // The negative-evidence pass's per-relation maximally contained
  // counterparts (§5.2), rebuilt in Prepare from the iteration's input
  // scores. Keyed by signed left relation id: (right relation r', score).
  struct BestCounterparts {
    std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>>
        right_sub_left;
    std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>>
        left_sub_right;
  };

  ShardLayout layout_;
  DirectionalContext l2r_;
  BestCounterparts best_;
  // Candidate lists, one slot per left instance, filled by RunShard (or
  // LoadShard) and drained (or, under semi_naive, copied) by Merge. Two
  // generations, alternating per iteration: `results_[gen_]` is the active
  // one, the other holds the previous same-parity iteration's output for
  // reuse. The vectors keep their capacity across iterations.
  std::array<std::vector<std::vector<Candidate>>, 2> results_;
  // results_[g] holds a complete prior output (set by a semi_naive Merge or
  // SeedResults); precondition for reusing generation g.
  std::array<bool, 2> have_results_ = {false, false};
  // Active generation this iteration: alternates per Prepare, so it points
  // at the slots written two iterations ago (same parity).
  size_t gen_ = 0;
  size_t prepare_count_ = 0;
  // This iteration skips instances clean in ctx.worklist (set in Prepare).
  bool reuse_ = false;
  // The per-worker scratch slots, bound in Prepare (RunShard must not call
  // ScratchSlots itself — it may allocate).
  std::vector<InstanceShardScratch>* scratch_ = nullptr;
  // Registered in Prepare when ctx.obs.metrics is set; bumped per shard
  // with the worker's slot.
  obs::MetricId entities_scored_ = 0;
  obs::MetricId entities_reused_ = 0;
  obs::MetricId entities_with_candidates_ = 0;
  obs::MetricId candidates_emitted_ = 0;
};

}  // namespace paris::core

#endif  // PARIS_CORE_INSTANCE_ALIGN_H_
