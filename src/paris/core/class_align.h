#ifndef PARIS_CORE_CLASS_ALIGN_H_
#define PARIS_CORE_CLASS_ALIGN_H_

#include <string>
#include <string_view>
#include <vector>

#include "paris/core/class_scores.h"
#include "paris/core/config.h"
#include "paris/core/direction.h"
#include "paris/core/pass.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"

namespace paris::core {

// Per-worker scratch of the class pass (defined in class_align.cc), owned
// by the IterationContext and bound to `scratch_` in Prepare — the serial
// phase, per the ScratchSlots contract.
struct ClassShardScratch;

// The class-alignment pass (§4.3, Eq. (17)), run once after the instance
// fixpoint converged (or stopped):
//
//   Pr(c ⊆ d) = Σ_{x : type(x,c)} [1 - ∏_{y : type(y,d)} (1 - Pr(x ≡ y))]
//               ----------------------------------------------------------
//                                   #x : type(x, c)
//
// evaluated over at most `config.class_instance_sample` instances per class,
// against the final maximal assignment. Computed in both directions.
//
// Input (bound in Prepare): `ctx.previous`, the equivalence store of the
// last completed iteration. The item space is the (direction, class)
// sequence — left classes first, then right — and shards partition it;
// every shard appends only to its own entry list, and Merge concatenates
// the lists in ascending shard order, so the entry sequence is
// byte-identical across shard and thread counts.
class ClassPass final : public Pass {
 public:
  const char* name() const override { return "class"; }
  size_t Prepare(IterationContext& ctx) override;
  void RunShard(size_t shard, size_t worker, IterationContext& ctx) override;
  void Merge(IterationContext& ctx) override;
  // SaveShard/LoadShard keep the never-checkpointed defaults: the class
  // pass is the run's final consistency step and always completes (the
  // aligner never cancels it mid-pass), so there is nothing to cache.

 private:
  ShardLayout layout_;
  size_t num_left_ = 0;
  DirectionalContext l2r_;
  DirectionalContext r2l_;
  std::vector<std::vector<ClassAlignmentEntry>> outputs_;  // one per shard
  // The per-worker scratch slots, bound in Prepare (RunShard must not call
  // ScratchSlots itself — it may allocate).
  std::vector<ClassShardScratch>* scratch_ = nullptr;
  // Registered in Prepare when ctx.obs.metrics is set; bumped per shard
  // with the worker's slot.
  obs::MetricId classes_scored_ = 0;
  obs::MetricId entries_emitted_ = 0;
};

}  // namespace paris::core

#endif  // PARIS_CORE_CLASS_ALIGN_H_
