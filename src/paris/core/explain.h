#ifndef PARIS_CORE_EXPLAIN_H_
#define PARIS_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "paris/core/config.h"
#include "paris/core/direction.h"
#include "paris/core/relation_scores.h"
#include "paris/ontology/ontology.h"

namespace paris::core {

// Evidence inspection: decomposes Pr(x ≡ x') (Eq. 13) into the individual
// statement-pair contributions, so a user can see *why* PARIS believes (or
// doesn't believe) two entities are the same. Each piece of evidence is one
// pair of statements r(x, y) / r'(x', y') with Pr(y ≡ y') > 0; its factor
//
//   (1 - Pr(r'⊆r)·fun⁻¹(r)·Pr(y≡y')) · (1 - Pr(r⊆r')·fun⁻¹(r')·Pr(y≡y'))
//
// multiplies into 1 - Pr(x ≡ x'). Smaller factor = stronger evidence.
struct EvidenceItem {
  rdf::RelId left_rel = rdf::kNullRel;    // r  (signed, left ontology)
  rdf::RelId right_rel = rdf::kNullRel;   // r' (signed, right ontology)
  rdf::TermId left_value = rdf::kNullTerm;   // y
  rdf::TermId right_value = rdf::kNullTerm;  // y'
  double value_prob = 0.0;     // Pr(y ≡ y')
  double sub_right_left = 0.0; // Pr(r' ⊆ r)
  double sub_left_right = 0.0; // Pr(r ⊆ r')
  double fun_inv_left = 0.0;   // fun⁻¹(r)
  double fun_inv_right = 0.0;  // fun⁻¹(r')
  double factor = 1.0;         // the multiplied-in factor (≤ 1)
};

struct MatchExplanation {
  rdf::TermId left = rdf::kNullTerm;
  rdf::TermId right = rdf::kNullTerm;
  // Evidence sorted by increasing factor (strongest first).
  std::vector<EvidenceItem> evidence;
  // 1 - ∏ factors: the positive-evidence probability (Eq. 13).
  double probability = 0.0;

  // Human-readable multi-line rendering.
  std::string ToString(const ontology::Ontology& left_onto,
                       const ontology::Ontology& right_onto) const;
};

// Recomputes the Eq. 13 evidence for the pair (x, x') under the given
// alignment state. `l2r` must expand left terms exactly as the pass that
// produced the state did (same equivalence store / matcher / flags);
// `rel_scores` are the sub-relation probabilities to weight with.
MatchExplanation ExplainMatch(const ontology::Ontology& left,
                              const ontology::Ontology& right,
                              const RelationScores& rel_scores,
                              const DirectionalContext& l2r,
                              const AlignmentConfig& config, rdf::TermId x,
                              rdf::TermId x_prime);

// Convenience: explains against a finished AlignmentResult, using the
// given literal matcher (must already be indexed on `right`). The
// explanation uses the *final* equivalence store and sub-relation scores,
// i.e. the state the last iteration converged to.
MatchExplanation ExplainMatch(const ontology::Ontology& left,
                              const ontology::Ontology& right,
                              const struct AlignmentResult& result,
                              const LiteralMatcher& matcher,
                              const AlignmentConfig& config, rdf::TermId x,
                              rdf::TermId x_prime);

}  // namespace paris::core

#endif  // PARIS_CORE_EXPLAIN_H_
