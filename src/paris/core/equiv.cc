#include "paris/core/equiv.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace paris::core {

void InstanceEquivalences::Set(rdf::TermId left,
                               std::vector<Candidate> candidates) {
  assert(!finalized_);
  if (candidates.empty()) return;
  left_to_right_[left] = std::move(candidates);
}

void InstanceEquivalences::Finalize() {
  assert(!finalized_);
  // Transpose.
  for (const auto& [left, candidates] : left_to_right_) {
    for (const Candidate& c : candidates) {
      right_to_left_[c.other].push_back(Candidate{left, c.prob});
    }
  }
  auto better = [](const Candidate& a, const Candidate& b) {
    return a.prob != b.prob ? a.prob > b.prob : a.other < b.other;
  };
  for (auto& [right, candidates] : right_to_left_) {
    std::sort(candidates.begin(), candidates.end(), better);
  }
  // Maximal assignments (first element after sorting = deterministic
  // arbitrary tie-break, §4.2).
  for (const auto& [left, candidates] : left_to_right_) {
    max_left_.emplace(left, candidates.front());
  }
  for (const auto& [right, candidates] : right_to_left_) {
    max_right_.emplace(right, candidates.front());
  }
  finalized_ = true;
}

std::span<const Candidate> InstanceEquivalences::LeftToRight(
    rdf::TermId left) const {
  auto it = left_to_right_.find(left);
  if (it == left_to_right_.end()) return {};
  return {it->second.data(), it->second.size()};
}

std::span<const Candidate> InstanceEquivalences::RightToLeft(
    rdf::TermId right) const {
  assert(finalized_);
  auto it = right_to_left_.find(right);
  if (it == right_to_left_.end()) return {};
  return {it->second.data(), it->second.size()};
}

const Candidate* InstanceEquivalences::MaxOfLeft(rdf::TermId left) const {
  assert(finalized_);
  auto it = max_left_.find(left);
  return it == max_left_.end() ? nullptr : &it->second;
}

const Candidate* InstanceEquivalences::MaxOfRight(rdf::TermId right) const {
  assert(finalized_);
  auto it = max_right_.find(right);
  return it == max_right_.end() ? nullptr : &it->second;
}

double InstanceEquivalences::MaxAssignmentChangeFraction(
    const InstanceEquivalences& previous) const {
  assert(finalized_ && previous.finalized_);
  size_t universe = 0;
  size_t changed = 0;
  for (const auto& [left, candidate] : max_left_) {
    ++universe;
    auto it = previous.max_left_.find(left);
    if (it == previous.max_left_.end() ||
        it->second.other != candidate.other) {
      ++changed;
    }
  }
  for (const auto& [left, candidate] : previous.max_left_) {
    if (!max_left_.contains(left)) {
      ++universe;
      ++changed;
    }
  }
  if (universe == 0) return 0.0;
  return static_cast<double>(changed) / static_cast<double>(universe);
}

namespace {

// Keys present in exactly one map, or present in both with different
// candidate vectors (exact element comparison).
void DiffListMaps(
    const std::unordered_map<rdf::TermId, std::vector<Candidate>>& a,
    const std::unordered_map<rdf::TermId, std::vector<Candidate>>& b,
    std::vector<rdf::TermId>* out) {
  for (const auto& [term, candidates] : a) {
    auto it = b.find(term);
    if (it == b.end() || it->second != candidates) out->push_back(term);
  }
  for (const auto& [term, candidates] : b) {
    if (!a.contains(term)) out->push_back(term);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace

void InstanceEquivalences::DiffLeftTerms(const InstanceEquivalences& other,
                                         std::vector<rdf::TermId>* out) const {
  DiffListMaps(left_to_right_, other.left_to_right_, out);
}

void InstanceEquivalences::DiffRightTerms(const InstanceEquivalences& other,
                                          std::vector<rdf::TermId>* out) const {
  assert(finalized_ && other.finalized_);
  DiffListMaps(right_to_left_, other.right_to_left_, out);
}

InstanceEquivalences BlendEquivalences(const InstanceEquivalences& previous,
                                       const InstanceEquivalences& fresh,
                                       double lambda, double threshold,
                                       size_t max_candidates) {
  assert(previous.finalized_ && fresh.finalized_);
  InstanceEquivalences out;
  // Union of left keys.
  std::unordered_set<rdf::TermId> lefts;
  for (const auto& [l, cs] : previous.left_to_right_) lefts.insert(l);
  for (const auto& [l, cs] : fresh.left_to_right_) lefts.insert(l);

  auto better = [](const Candidate& a, const Candidate& b) {
    return a.prob != b.prob ? a.prob > b.prob : a.other < b.other;
  };
  for (rdf::TermId left : lefts) {
    std::unordered_map<rdf::TermId, double> blended;
    for (const Candidate& c : previous.LeftToRight(left)) {
      blended[c.other] += lambda * c.prob;
    }
    for (const Candidate& c : fresh.LeftToRight(left)) {
      blended[c.other] += (1.0 - lambda) * c.prob;
    }
    std::vector<Candidate> candidates;
    for (const auto& [other, prob] : blended) {
      if (prob >= threshold) candidates.push_back(Candidate{other, prob});
    }
    if (candidates.empty()) continue;
    std::sort(candidates.begin(), candidates.end(), better);
    if (candidates.size() > max_candidates) candidates.resize(max_candidates);
    out.Set(left, std::move(candidates));
  }
  out.Finalize();
  return out;
}

}  // namespace paris::core
