#include "paris/core/multi_align.h"

#include <algorithm>
#include <unordered_map>

#include "paris/util/hash.h"

namespace paris::core {

namespace {

// Union-find over (ontology, term) keys packed into 64 bits.
class UnionFind {
 public:
  uint64_t Find(uint64_t key) {
    auto it = parent_.find(key);
    if (it == parent_.end()) {
      parent_.emplace(key, key);
      return key;
    }
    // Path compression.
    uint64_t root = it->second;
    while (true) {
      auto pit = parent_.find(root);
      if (pit->second == root) break;
      root = pit->second;
    }
    uint64_t walk = key;
    while (walk != root) {
      auto wit = parent_.find(walk);
      const uint64_t next = wit->second;
      wit->second = root;
      walk = next;
    }
    return root;
  }

  void Union(uint64_t a, uint64_t b) {
    const uint64_t ra = Find(a);
    const uint64_t rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

  const std::unordered_map<uint64_t, uint64_t>& nodes() const {
    return parent_;
  }

 private:
  std::unordered_map<uint64_t, uint64_t> parent_;
};

constexpr uint64_t PackMember(size_t ontology, rdf::TermId term) {
  return util::PackPair(static_cast<uint32_t>(ontology), term);
}

}  // namespace

MultiAlignmentResult MultiAligner::Run() {
  MultiAlignmentResult result;
  UnionFind clusters;
  std::unordered_map<uint64_t, double> edge_prob;  // root-agnostic min probs

  for (size_t i = 0; i < ontologies_.size(); ++i) {
    for (size_t j = i + 1; j < ontologies_.size(); ++j) {
      Aligner aligner(*ontologies_[i], *ontologies_[j], config_);
      if (matcher_factory_) {
        aligner.set_literal_matcher_factory(matcher_factory_);
      }
      AlignmentResult pairwise = aligner.Run();

      // Reciprocal maximal assignments become cluster edges.
      for (const auto& [left, candidate] : pairwise.instances.max_left()) {
        const Candidate* back = pairwise.instances.MaxOfRight(candidate.other);
        if (back == nullptr || back->other != left) continue;
        const uint64_t a = PackMember(i, left);
        const uint64_t b = PackMember(j, candidate.other);
        clusters.Union(a, b);
        edge_prob[a] = std::min(edge_prob.count(a) ? edge_prob[a] : 1.0,
                                candidate.prob);
        edge_prob[b] = std::min(edge_prob.count(b) ? edge_prob[b] : 1.0,
                                candidate.prob);
      }
      result.pairs.emplace_back(i, j);
      result.pairwise.push_back(std::move(pairwise));
    }
  }

  // Materialize clusters with ≥ 2 members.
  std::unordered_map<uint64_t, EntityCluster> by_root;
  for (const auto& [key, unused_parent] : clusters.nodes()) {
    const uint64_t root = clusters.Find(key);
    EntityCluster& cluster = by_root[root];
    cluster.members.push_back(ClusterMember{
        static_cast<size_t>(util::UnpackFirst(key)), util::UnpackSecond(key)});
    auto it = edge_prob.find(key);
    if (it != edge_prob.end()) {
      cluster.min_edge_prob = std::min(cluster.min_edge_prob, it->second);
    }
  }
  for (auto& [root, cluster] : by_root) {
    if (cluster.members.size() < 2) continue;
    std::sort(cluster.members.begin(), cluster.members.end(),
              [](const ClusterMember& a, const ClusterMember& b) {
                return a.ontology != b.ontology ? a.ontology < b.ontology
                                                : a.term < b.term;
              });
    result.clusters.push_back(std::move(cluster));
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const EntityCluster& a, const EntityCluster& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              const ClusterMember& ma = a.members.front();
              const ClusterMember& mb = b.members.front();
              return ma.ontology != mb.ontology ? ma.ontology < mb.ontology
                                                : ma.term < mb.term;
            });
  return result;
}

}  // namespace paris::core
