#include "paris/core/class_align.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace paris::core {

// Per-worker scratch, owned by the IterationContext so the containers'
// capacity survives across shards and iterations. Reuse means the maps'
// bucket layout (and so their iteration order) depends on which classes the
// worker saw before — per-class output is therefore sorted by target class
// below, never emitted in map order, keeping entries byte-identical across
// thread counts and shard assignments.
struct ClassShardScratch {
  std::vector<Candidate> x_eq;
  std::unordered_map<rdf::TermId, double> per_class_miss;
  std::unordered_map<rdf::TermId, double> expected_overlap;
  std::vector<std::pair<rdf::TermId, double>> sorted_overlap;
};

namespace {

void ScoreOneClass(rdf::TermId c, const DirectionalContext& ctx,
                   const AlignmentConfig& config, bool sub_is_left,
                   ClassShardScratch* scratch,
                   std::vector<ClassAlignmentEntry>* out) {
  const ontology::Ontology& source = *ctx.source;
  const ontology::Ontology& target = *ctx.target;
  const auto members = source.InstancesOf(c);
  if (members.empty()) return;
  const size_t sample = std::min(members.size(), config.class_instance_sample);
  std::vector<Candidate>& x_eq = scratch->x_eq;
  std::unordered_map<rdf::TermId, double>& per_class_miss =
      scratch->per_class_miss;
  std::unordered_map<rdf::TermId, double>& expected_overlap =
      scratch->expected_overlap;
  expected_overlap.clear();
  for (size_t i = 0; i < sample; ++i) {
    x_eq.clear();
    ctx.AppendEquivalents(members[i], &x_eq);
    if (x_eq.empty()) continue;
    // Per instance x: for each target class d,
    //   1 - ∏_{y ∈ eq(x), type(y, d)} (1 - Pr(x ≡ y)).
    per_class_miss.clear();
    for (const Candidate& cx : x_eq) {
      for (rdf::TermId d : target.ClassesOf(cx.other)) {
        auto [it, inserted] = per_class_miss.emplace(d, 1.0);
        it->second *= (1.0 - cx.prob);
      }
    }
    for (const auto& [d, miss] : per_class_miss) {
      expected_overlap[d] += 1.0 - miss;
    }
  }
  std::vector<std::pair<rdf::TermId, double>>& sorted = scratch->sorted_overlap;
  sorted.assign(expected_overlap.begin(), expected_overlap.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [d, overlap] : sorted) {
    const double score = overlap / static_cast<double>(sample);
    if (score >= config.class_min_score) {
      out->push_back(
          ClassAlignmentEntry{c, d, score > 1.0 ? 1.0 : score, sub_is_left});
    }
  }
}

}  // namespace

std::vector<ClassAlignmentEntry> ClassScores::AboveThreshold(
    double threshold, bool sub_is_left) const {
  std::vector<ClassAlignmentEntry> out;
  for (const auto& e : entries_) {
    if (e.sub_is_left == sub_is_left && e.score >= threshold) {
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ClassAlignmentEntry& a, const ClassAlignmentEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.sub != b.sub) return a.sub < b.sub;
              return a.super < b.super;
            });
  return out;
}

size_t ClassScores::NumAlignedSubClasses(double threshold,
                                         bool sub_is_left) const {
  std::unordered_set<rdf::TermId> seen;
  for (const auto& e : entries_) {
    if (e.sub_is_left == sub_is_left && e.score >= threshold) {
      seen.insert(e.sub);
    }
  }
  return seen.size();
}

size_t ClassPass::Prepare(IterationContext& ctx) {
  num_left_ = ctx.left->classes().size();
  const size_t total = num_left_ + ctx.right->classes().size();
  layout_ = ShardLayout::Make(total, ctx.config->num_shards);
  l2r_ = ctx.Direction(true, ctx.previous);
  r2l_ = ctx.Direction(false, ctx.previous);
  outputs_.resize(layout_.num_shards);
  for (auto& shard : outputs_) shard.clear();
  scratch_ = &ctx.ScratchSlots<ClassShardScratch>();  // serial phase
  if (ctx.obs.metrics != nullptr) {  // serial phase: registration may allocate
    classes_scored_ = ctx.obs.metrics->Counter("class.classes_scored");
    entries_emitted_ = ctx.obs.metrics->Counter("class.entries_emitted");
  }
  return layout_.num_shards;
}

void ClassPass::RunShard(size_t shard, size_t worker, IterationContext& ctx) {
  const std::vector<rdf::TermId>& left_classes = ctx.left->classes();
  const std::vector<rdf::TermId>& right_classes = ctx.right->classes();
  ClassShardScratch& scratch = (*scratch_)[worker];
  // Item i scores left class i for i < num_left, right class i-num_left
  // otherwise.
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    const bool is_left = i < num_left_;
    const rdf::TermId c =
        is_left ? left_classes[i] : right_classes[i - num_left_];
    ScoreOneClass(c, is_left ? l2r_ : r2l_, *ctx.config, is_left, &scratch,
                  &outputs_[shard]);
  }
  if (ctx.obs.metrics != nullptr) {
    ctx.obs.metrics->Add(classes_scored_, worker,
                         layout_.end(shard) - layout_.begin(shard));
    ctx.obs.metrics->Add(entries_emitted_, worker, outputs_[shard].size());
  }
}

void ClassPass::Merge(IterationContext& ctx) {
  std::vector<ClassAlignmentEntry> entries;
  for (const std::vector<ClassAlignmentEntry>& shard : outputs_) {
    entries.insert(entries.end(), shard.begin(), shard.end());
  }
  ctx.classes = ClassScores(std::move(entries));
}

}  // namespace paris::core
