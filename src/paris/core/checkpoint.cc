#include "paris/core/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "paris/util/fault_injection.h"
#include "paris/util/fs.h"
#include "paris/util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define PARIS_CHECKPOINT_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace paris::core {

namespace {

constexpr char kManifestName[] = "MANIFEST";

// Minimum spacing between captures, as a multiple of the last measured
// serialization cost (see CheckpointWriter::Due).
constexpr double kCaptureCostFactor = 100.0;

std::string CheckpointFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06llu.result",
                static_cast<unsigned long long>(seq));
  return buf;
}

struct ManifestEntry {
  uint64_t seq = 0;
  std::string name;
};

// Parses the MANIFEST journal. Only lines terminated by '\n' count (a
// crash mid-append leaves a torn final line, which is simply not a
// checkpoint yet); malformed lines — bad sequence number, missing tab,
// a name that tries to escape the directory — are skipped, so one
// corrupted append can never take the whole journal down.
std::vector<ManifestEntry> ReadManifest(const std::string& path) {
  std::vector<ManifestEntry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return entries;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = std::move(buffer).str();
  size_t pos = 0;
  while (true) {
    const size_t newline = contents.find('\n', pos);
    if (newline == std::string::npos) break;  // torn tail: ignore
    const std::string_view line(contents.data() + pos, newline - pos);
    pos = newline + 1;
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos || tab == 0 || tab + 1 == line.size()) {
      continue;
    }
    const std::string seq_str(line.substr(0, tab));
    char* end = nullptr;
    errno = 0;
    const unsigned long long seq = std::strtoull(seq_str.c_str(), &end, 10);
    if (errno != 0 || end != seq_str.c_str() + seq_str.size()) continue;
    const std::string_view name = line.substr(tab + 1);
    if (name.find('/') != std::string_view::npos) continue;
    entries.push_back({seq, std::string(name)});
  }
  return entries;
}

// Appends one journal line durably: write, then fsync, so the entry — and
// with it the checkpoint file it names, already renamed into place — is on
// disk before anyone can observe it. EINTR is retried; anything else fails
// the append (and thereby disables checkpointing).
util::Status AppendManifestLine(const std::string& path, std::string line) {
  const util::FaultAction fault =
      util::CheckFaultRetryingTransient("checkpoint.manifest");
  if (fault.kind == util::FaultKind::kErrno) {
    return util::InternalError("cannot append to '" + path +
                               "': " + std::strerror(fault.error_number));
  }
  if (fault.kind == util::FaultKind::kBitFlip && !line.empty()) {
    line[line.size() / 2] ^= 0x20;  // corrupt line; readers must skip it
  }
  if (fault.kind == util::FaultKind::kShortWrite) {
    line.resize(line.size() / 2);  // torn append: no terminating newline
  }
#ifdef PARIS_CHECKPOINT_POSIX_IO
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return util::InternalError("cannot open '" + path +
                               "': " + std::strerror(errno));
  }
  const char* data = line.data();
  size_t remaining = line.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return util::InternalError("cannot append to '" + path +
                                 "': " + std::strerror(err));
    }
    data += written;
    remaining -= static_cast<size_t>(written);
  }
  if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
    const int err = errno;
    ::close(fd);
    return util::InternalError("cannot fsync '" + path +
                               "': " + std::strerror(err));
  }
  ::close(fd);
  return util::OkStatus();
#else
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return util::InternalError("cannot open '" + path +
                               "': " + std::strerror(errno));
  }
  const size_t written = std::fwrite(line.data(), 1, line.size(), file);
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (written != line.size() || !flushed) {
    return util::InternalError("cannot append to '" + path + "'");
  }
  return util::OkStatus();
#endif
}

}  // namespace

CheckpointWriter::CheckpointWriter(Options options,
                                   const ontology::Ontology& left,
                                   const ontology::Ontology& right,
                                   const AlignmentConfig& config,
                                   std::string matcher)
    : options_(std::move(options)),
      left_(left),
      right_(right),
      config_(config),
      matcher_(std::move(matcher)),
      last_capture_(std::chrono::steady_clock::now()) {
#ifdef PARIS_CHECKPOINT_POSIX_IO
  // Create the directory (one level) if it does not exist yet; a failure
  // here surfaces as the first write failing, which disables checkpointing
  // with a warning like every other IO error.
  ::mkdir(options_.dir.c_str(), 0755);
#endif
  // Continue the journal of a previous (interrupted) run in this
  // directory rather than reusing its sequence numbers.
  for (const ManifestEntry& entry :
       ReadManifest(options_.dir + "/" + kManifestName)) {
    next_seq_ = std::max(next_seq_, entry.seq + 1);
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

CheckpointWriter::~CheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_one();
  worker_.join();
}

bool CheckpointWriter::Due() const {
  if (disabled_.load(std::memory_order_relaxed)) return false;
  if (busy_.load(std::memory_order_acquire)) return false;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - last_capture_;
  // Self-limiting cadence: serialization runs on the shard gate, so space
  // captures at least kCaptureCostFactor serializations apart — the gate
  // thread spends at most ~1/kCaptureCostFactor of wall clock capturing,
  // however small the configured interval or large the result.
  const double floor_seconds = std::max(
      options_.interval_seconds, kCaptureCostFactor * capture_cost_seconds_);
  return elapsed.count() >= floor_seconds;
}

void CheckpointWriter::Submit(const ResultSnapshotView& view) {
  if (disabled_.load(std::memory_order_relaxed) ||
      busy_.load(std::memory_order_acquire)) {
    return;
  }
  const auto capture_start = std::chrono::steady_clock::now();
  std::string bytes =
      SerializeAlignmentResult(view, left_, right_, config_, matcher_);
  busy_.store(true, std::memory_order_release);
  last_capture_ = std::chrono::steady_clock::now();
  capture_cost_seconds_ =
      std::chrono::duration<double>(last_capture_ - capture_start).count();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ = Job{next_seq_++, std::move(bytes)};
  }
  cv_.notify_one();
}

void CheckpointWriter::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || pending_.has_value(); });
      if (!pending_.has_value()) return;  // stop, nothing in flight
      job = std::move(*pending_);
      pending_.reset();
    }
    WriteCheckpoint(std::move(job));
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_.store(false, std::memory_order_release);
    }
    cv_done_.notify_all();
  }
}

void CheckpointWriter::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] {
    return !pending_.has_value() && !busy_.load(std::memory_order_acquire);
  });
}

void CheckpointWriter::WriteCheckpoint(Job job) {
  const std::string name = CheckpointFileName(job.seq);
  const std::string path = options_.dir + "/" + name;
  util::Status status = util::WriteFileAtomic(path, job.bytes);
  if (status.ok()) {
    status = AppendManifestLine(
        options_.dir + "/" + kManifestName,
        std::to_string(job.seq) + "\t" + name + "\n");
  }
  if (!status.ok()) {
    // Best-effort by contract: warn, stop checkpointing, keep the run
    // alive. The previous durable checkpoint (if any) stays usable.
    PARIS_LOG(kWarning) << "checkpointing disabled: " << status.ToString();
    disabled_.store(true, std::memory_order_relaxed);
    return;
  }
  written_.fetch_add(1, std::memory_order_relaxed);
  PARIS_LOG(kDebug) << "checkpoint " << name << " journaled";
  if (job.seq > 2) {
    // Keep the last two checkpoints; stale manifest entries whose file is
    // gone are skipped at load time.
    std::remove((options_.dir + "/" + CheckpointFileName(job.seq - 2)).c_str());
  }
}

util::StatusOr<AlignmentResult> LoadLatestCheckpoint(
    const std::string& dir, const ontology::Ontology& left,
    const ontology::Ontology& right, const AlignmentConfig& config,
    const std::string& matcher) {
  std::vector<ManifestEntry> entries = ReadManifest(dir + "/" + kManifestName);
  if (entries.empty()) {
    return util::NotFoundError("no checkpoint manifest in '" + dir + "'");
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const ManifestEntry& a, const ManifestEntry& b) {
                     return a.seq < b.seq;
                   });
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const std::string path = dir + "/" + it->name;
    util::StatusOr<AlignmentResult> loaded =
        LoadAlignmentResult(path, left, right, config, matcher);
    if (loaded.ok()) {
      PARIS_LOG(kInfo) << "resuming from checkpoint " << path;
      return loaded;
    }
    // Missing (garbage-collected), corrupt, or setup-incompatible entries
    // degrade to the next-newest checkpoint, never to a failed run.
    PARIS_LOG(kWarning) << "skipping checkpoint " << path << ": "
                        << loaded.status().ToString();
  }
  return util::NotFoundError("no usable checkpoint in '" + dir + "'");
}

}  // namespace paris::core
