#ifndef PARIS_CORE_CLASS_SCORES_H_
#define PARIS_CORE_CLASS_SCORES_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "paris/rdf/term.h"

namespace paris::core {

// One reportable sub-class alignment Pr(sub ⊆ super).
struct ClassAlignmentEntry {
  rdf::TermId sub = rdf::kNullTerm;
  rdf::TermId super = rdf::kNullTerm;
  double score = 0.0;
  // True if `sub` is a class of the left ontology.
  bool sub_is_left = true;
};

// All sub-class scores, both directions, with query helpers for the
// experiment harness. Produced by `ClassPass` (core/class_align.h); split
// into its own header so the pipeline types (core/pass.h) can hold one
// without pulling in the pass implementation.
class ClassScores {
 public:
  explicit ClassScores(std::vector<ClassAlignmentEntry> entries)
      : entries_(std::move(entries)) {}
  ClassScores() = default;

  const std::vector<ClassAlignmentEntry>& entries() const { return entries_; }

  // Entries with score ≥ threshold, one direction, sorted by descending
  // score.
  std::vector<ClassAlignmentEntry> AboveThreshold(double threshold,
                                                  bool sub_is_left) const;

  // Number of distinct sub-classes (one direction) with ≥1 assignment of
  // score ≥ threshold. This is the quantity of the paper's Figure 2.
  size_t NumAlignedSubClasses(double threshold, bool sub_is_left) const;

 private:
  std::vector<ClassAlignmentEntry> entries_;
};

}  // namespace paris::core

#endif  // PARIS_CORE_CLASS_SCORES_H_
