#ifndef PARIS_CORE_CONFIG_H_
#define PARIS_CORE_CONFIG_H_

#include <cstddef>
#include <string>

#include "paris/ontology/functionality.h"

namespace paris::core {

// Tuning-free by design: the paper's two knobs are the bootstrap value θ
// (shown in §6.3 to not affect results) and the literal similarity function
// (passed separately to the `Aligner`). Every other field mirrors an
// implementation choice from §5 and defaults to the paper's setting; the
// non-default values exist for the §6.3 / Appendix A ablation benchmarks.
struct AlignmentConfig {
  // Initial sub-relation score for the very first iteration (§5.1).
  double theta = 0.1;

  // Hard cap on fixpoint iterations (the paper converges in 2-4).
  int max_iterations = 10;

  // Converged when the fraction of instances whose maximal assignment
  // changed drops below this (§6.1 uses 1 %).
  double convergence_threshold = 0.01;

  // Probabilities below this are treated as zero and never stored. §5.2
  // thresholds at θ itself; a negative value (the default) means "use
  // theta".
  double instance_threshold = -1.0;

  // Sub-relation / sub-class scores below this are dropped from the tables.
  double relation_min_score = 0.01;
  double class_min_score = 0.01;

  // Eq. (14) (negative evidence) instead of Eq. (13). Off by default: §6.3
  // found positive evidence sufficient (and negative evidence harmful with
  // noisy attribute values).
  bool use_negative_evidence = false;

  // Use the full equality distribution of the previous iteration instead of
  // only its maximal assignment (§5.2 default is maximal-only; §6.3 reports
  // the full version changes results only marginally).
  bool use_full_equalities = false;

  // Cap on the number of pairs evaluated per relation in Eq. (12) and per
  // class in Eq. (17) (§5.2 uses 10,000).
  size_t relation_pair_sample = 10000;
  size_t class_instance_sample = 10000;

  // Keep at most this many equivalence candidates per instance (top scores).
  size_t max_candidates_per_instance = 64;

  // Skip neighbor expansion through terms with more statements than this
  // (guards against degenerate hub literals; effectively off by default).
  size_t max_neighbor_fanout = 100000;

  // Global-functionality definition (Appendix A ablation).
  ontology::FunctionalityVariant functionality_variant =
      ontology::FunctionalityVariant::kHarmonicMean;

  // Dampening (extension; §5.1 notes "one could always enforce convergence
  // of such iterations by introducing a progressively increasing dampening
  // factor"). With d ∈ (0, 1), iteration k blends the fresh probabilities
  // with the previous iteration's as λ_k·old + (1-λ_k)·new, where
  // λ_k = d·(1 - 1/k) increases toward d. 0 disables (paper default).
  double dampening = 0.0;

  // Relation-name prior (extension; §7 conjectures "the name heuristics of
  // more traditional schema-alignment techniques could be factored into the
  // model"). When enabled, the very first iteration seeds Pr(r ⊆ r') with
  // max(θ, name-similarity·cap) instead of the uniform θ. Converged scores
  // are unaffected (the bootstrap only shapes iteration 1); convergence may
  // come sooner. Off by default (the paper uses no name heuristics).
  bool use_relation_name_prior = false;
  double name_prior_cap = 0.5;

  // Semi-naive (differential) fixpoint evaluation. Each iteration records
  // which left entities' evidence inputs changed — moved equivalence views
  // of their fact neighbors, moved scores of their incident relations — and
  // the next iteration's instance pass recomputes only that worklist,
  // reusing the retained candidate lists everywhere else (the relation pass
  // re-scores only relations a moved term participates in). Because reuse
  // is exact (a slot is reused only when every input to it is bit-identical
  // to the previous iteration's), a semi-naive run's output is byte-
  // identical to the exhaustive run — the flag shapes wall time, never the
  // trajectory, and is therefore excluded from the result-snapshot
  // compatibility key. Later iterations approach no-op cost as the
  // fixpoint converges. Off = recompute every entity every iteration.
  bool semi_naive = true;

  // Worker threads for the alignment passes; 0 = run inline.
  size_t num_threads = 0;

  // Shards per pipeline pass (core/pass.h); 0 = the fixed default
  // (kDefaultNumShards). Shard boundaries depend only on this and the item
  // count — never on num_threads — so mid-iteration checkpoints stay valid
  // across machines. Like num_threads, this does not shape the trajectory
  // (results are byte-identical across shard counts) and is therefore
  // excluded from the result-snapshot compatibility key; resuming under a
  // different shard count only forfeits the checkpoint's cached shards.
  size_t num_shards = 0;

  // Record per-iteration maximal assignments and relation scores in the
  // result (needed by the per-iteration experiment tables).
  bool record_history = true;

  // Periodic background checkpointing (core/checkpoint.h). When
  // `checkpoint_dir` is non-empty and `checkpoint_interval` > 0, the
  // aligner captures its completed-shard state at shard boundaries every
  // `checkpoint_interval` seconds and a background thread persists it to
  // the directory (atomic snapshot file + fsync'd manifest journal), so a
  // crash loses at most the in-flight shard. Like num_threads/num_shards,
  // neither field shapes the trajectory: both are excluded from the
  // result-snapshot compatibility key, and a checkpointed run's output is
  // byte-identical to an uncheckpointed one. Checkpoint write failures log
  // a warning and disable further checkpoints; they never fail the run.
  double checkpoint_interval = 0.0;
  std::string checkpoint_dir;
};

}  // namespace paris::core

#endif  // PARIS_CORE_CONFIG_H_
