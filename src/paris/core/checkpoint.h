#ifndef PARIS_CORE_CHECKPOINT_H_
#define PARIS_CORE_CHECKPOINT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "paris/core/aligner.h"
#include "paris/core/config.h"
#include "paris/core/result_snapshot.h"
#include "paris/ontology/ontology.h"
#include "paris/util/status.h"

namespace paris::core {

// Periodic background checkpointing for a running alignment.
//
// The aligner calls `Due()` at every shard boundary (inside the serialized
// shard gate, where the pass's completed outputs are stable) and, when the
// cadence has elapsed, serializes its state through a `ResultSnapshotView`
// and hands the bytes to `Submit`. Serialization happens on the calling
// thread — it is the only thread that may touch the live tables — but all
// file IO (atomic write, manifest fsync, garbage collection) runs on one
// background thread, so a slow disk never stalls the fixpoint.
//
// On-disk layout inside the checkpoint directory:
//
//   ckpt-<seq>.result   complete result snapshots (result_snapshot.h
//                       format, written via util::AtomicFileWriter)
//   MANIFEST            append-only journal, one "<seq>\t<filename>" line
//                       per durable checkpoint, fsync'd after each append
//
// A checkpoint file is only journaled after its atomic rename, so every
// manifest entry names a file that was complete and durable when the line
// was written. Readers tolerate a torn final line (a crash mid-append) and
// entries whose file has since been garbage-collected or corrupted — they
// simply fall back to the next-newest entry. Only the last two checkpoint
// files are kept.
//
// Checkpointing is strictly best-effort: any write failure logs a warning,
// disables further checkpoints, and never fails the run.
class CheckpointWriter {
 public:
  struct Options {
    std::string dir;              // must be an existing directory
    double interval_seconds = 0;  // cadence between captures
  };

  // `left`/`right`/`config`/`matcher` are the run-key inputs of the result
  // snapshots (result_snapshot.h); the referenced objects must outlive the
  // writer. Continues the sequence numbering of any MANIFEST already in
  // the directory, so a resumed run appends to the same journal.
  CheckpointWriter(Options options, const ontology::Ontology& left,
                   const ontology::Ontology& right,
                   const AlignmentConfig& config, std::string matcher);
  ~CheckpointWriter();  // drains the in-flight write, stops the thread

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  // True when a capture submitted now would be accepted: checkpointing has
  // not been disabled by a write failure, the previous write has finished,
  // and at least `interval_seconds` have passed since the last capture.
  // The cadence is additionally self-limiting: a capture stalls the shard
  // gate for however long serialization takes, so captures are spaced at
  // least 100x the last measured serialization cost apart — gate-thread
  // overhead stays bounded (~1% of wall clock) no matter how small the
  // configured interval or how large the result grows. Cheap (two atomic
  // loads + a clock read); called at every shard boundary.
  bool Due() const;

  // Serializes `view` on the calling thread and enqueues the bytes for the
  // background writer. The caller guarantees everything the view points at
  // is stable for the duration of the call; nothing is referenced after
  // Submit returns. Call only when `Due()`; a submit while busy is dropped.
  void Submit(const ResultSnapshotView& view);

  // Blocks until any submitted checkpoint has been fully journaled (or
  // failed and disabled checkpointing). After Drain, no background IO is
  // in flight and `checkpoints_written()` is final.
  void Drain();

  // Checkpoints durably journaled so far.
  uint64_t checkpoints_written() const {
    return written_.load(std::memory_order_relaxed);
  }

  // True once a write failure has permanently disabled checkpointing.
  bool disabled() const { return disabled_.load(std::memory_order_relaxed); }

 private:
  struct Job {
    uint64_t seq = 0;
    std::string bytes;
  };

  void WorkerLoop();
  void WriteCheckpoint(Job job);  // background thread only

  const Options options_;
  const ontology::Ontology& left_;
  const ontology::Ontology& right_;
  const AlignmentConfig& config_;
  const std::string matcher_;

  std::atomic<bool> busy_{false};
  std::atomic<bool> disabled_{false};
  std::atomic<uint64_t> written_{0};
  std::chrono::steady_clock::time_point last_capture_;
  double capture_cost_seconds_ = 0.0;  // gate thread only, like Due/Submit
  uint64_t next_seq_ = 1;

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_done_;
  std::optional<Job> pending_;
  bool stop_ = false;
  std::thread worker_;
};

// Loads the newest usable checkpoint from `dir` for this run setup,
// suitable for `Aligner::Resume`. Walks the MANIFEST journal newest to
// oldest; entries that are missing (garbage-collected), corrupt
// (kDataLoss), or incompatible with the given setup are skipped with a
// warning — corruption degrades to recomputation, never to a crash or a
// silently adopted bad state. Returns kNotFound when the directory holds
// no manifest or no entry loads.
util::StatusOr<AlignmentResult> LoadLatestCheckpoint(
    const std::string& dir, const ontology::Ontology& left,
    const ontology::Ontology& right, const AlignmentConfig& config,
    const std::string& matcher);

}  // namespace paris::core

#endif  // PARIS_CORE_CHECKPOINT_H_
