#include "paris/core/aligner.h"

#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "paris/core/checkpoint.h"
#include "paris/core/result_snapshot.h"
#include "paris/core/worklist.h"
#include "paris/obs/trace.h"
#include "paris/util/fs.h"
#include "paris/util/logging.h"
#include "paris/util/string_util.h"

namespace paris::core {

namespace {

// Strips a namespace prefix ("y:wasBornIn" → "wasbornin") and normalizes.
std::string RelationNameKey(const ontology::Ontology& onto, rdf::RelId rel) {
  std::string name(onto.pool().lexical(onto.store().relation_name(rel)));
  const size_t colon = name.rfind(':');
  if (colon != std::string::npos) name = name.substr(colon + 1);
  return util::NormalizeAlnum(name);
}

// The §7 extension: seed the bootstrap table with relation-name similarity
// so that, e.g., "birthPlace" and "wasBornIn"... do not match, but "phone"
// and "phoneNumber" start above θ. Only shapes iteration 1.
RelationScores NamePriorBootstrap(const ontology::Ontology& left,
                                  const ontology::Ontology& right,
                                  const AlignmentConfig& config) {
  RelationScores scores = RelationScores::Bootstrap(config.theta);
  const rdf::RelId num_left = static_cast<rdf::RelId>(left.num_relations());
  const rdf::RelId num_right = static_cast<rdf::RelId>(right.num_relations());
  for (rdf::RelId l = 1; l <= num_left; ++l) {
    const std::string left_key = RelationNameKey(left, l);
    if (left_key.empty()) continue;
    for (rdf::RelId r = 1; r <= num_right; ++r) {
      const std::string right_key = RelationNameKey(right, r);
      if (right_key.empty()) continue;
      const double sim = util::EditSimilarity(left_key, right_key);
      const double prior = sim * config.name_prior_cap;
      if (prior > config.theta) scores.SetBootstrapPrior(l, r, prior);
    }
  }
  return scores;
}

// Feeds a checkpoint's cached shards back into `pass` ahead of the shard
// loop. Returns the completed-flags vector for the scheduler — empty when
// nothing is usable (wrong pass, a different shard layout, or every payload
// failing validation), in which case the pass simply recomputes everything;
// the final tables are byte-identical either way.
std::vector<uint8_t> AdoptShards(Pass& pass,
                                 const PartialIterationState* partial,
                                 int pass_index, size_t num_shards,
                                 IterationContext& ctx) {
  std::vector<uint8_t> done;
  if (partial == nullptr || partial->pass != pass_index ||
      partial->num_shards != num_shards ||
      partial->payloads.size() != partial->shards.size()) {
    return done;
  }
  done.assign(num_shards, 0);
  bool any = false;
  for (size_t i = 0; i < partial->shards.size(); ++i) {
    const uint32_t shard = partial->shards[i];
    if (shard >= num_shards || done[shard]) continue;
    if (pass.LoadShard(shard, partial->payloads[i], ctx)) {
      done[shard] = 1;
      any = true;
    }
  }
  if (!any) done.clear();
  return done;
}

// Serializes the completed shards of an interrupted pass into a checkpoint.
PartialIterationState CapturePartial(const Pass& pass, int pass_index,
                                     int iteration, size_t num_shards,
                                     const ShardRunOutcome& outcome) {
  PartialIterationState partial;
  partial.iteration = iteration;
  partial.pass = pass_index;
  partial.num_shards = static_cast<uint32_t>(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (!outcome.completed[shard]) continue;
    partial.shards.push_back(static_cast<uint32_t>(shard));
    partial.payloads.emplace_back();
    pass.SaveShard(shard, &partial.payloads.back());
  }
  return partial;
}

// Feeds the periodic background checkpointer (core/checkpoint.h) from
// inside the scheduler's shard gate. Rebound before each cancellable pass;
// `OnShard` runs under the gate mutex — the only place a pass's completed
// shard outputs are guaranteed stable and visible — and, once the writer's
// cadence elapses, captures a full result-snapshot view: the last completed
// iteration's tables plus the running pass's completed shards, exactly the
// state a mid-pass cancel would persist. Serialization happens here on the
// gate thread (no live table is copied, see ResultSnapshotView); all file
// IO stays on the writer's background thread.
class PassCheckpointer {
 public:
  void Bind(CheckpointWriter* writer, const Pass* pass, int pass_index,
            int iteration, size_t num_shards,
            const std::vector<uint8_t>* cached, const AlignmentResult* result,
            const InstanceEquivalences* instances,
            const RelationScores* relations,
            const InstanceEquivalences* partial_instances) {
    writer_ = writer;
    if (writer_ == nullptr) return;
    pass_ = pass;
    pass_index_ = pass_index;
    iteration_ = iteration;
    result_ = result;
    instances_ = instances;
    relations_ = relations;
    partial_instances_ = partial_instances;
    if (cached != nullptr) {
      done_ = *cached;  // checkpoint-adopted shards count as completed
    } else {
      done_.assign(num_shards, 0);
    }
  }

  void OnShard(const ShardProgress& progress) {
    if (writer_ == nullptr) return;
    if (progress.shard < done_.size()) done_[progress.shard] = 1;
    if (!writer_->Due()) return;
    shards_.clear();
    payloads_.clear();
    for (size_t shard = 0; shard < done_.size(); ++shard) {
      if (!done_[shard]) continue;
      shards_.push_back(static_cast<uint32_t>(shard));
      payloads_.emplace_back();
      pass_->SaveShard(shard, &payloads_.back());
    }
    ResultSnapshotView view;
    view.iterations = {result_->iterations.data(), result_->iterations.size()};
    view.converged_at = -1;
    view.instances = instances_;
    view.relations = relations_;
    view.has_partial = true;
    view.partial_iteration = iteration_;
    view.partial_pass = pass_index_;
    view.partial_num_shards = static_cast<uint32_t>(done_.size());
    view.partial_shards = shards_;
    view.partial_payloads = payloads_;
    view.partial_instances = partial_instances_;
    writer_->Submit(view);
  }

 private:
  CheckpointWriter* writer_ = nullptr;
  const Pass* pass_ = nullptr;
  int pass_index_ = 0;
  int iteration_ = 0;
  const AlignmentResult* result_ = nullptr;
  const InstanceEquivalences* instances_ = nullptr;
  const RelationScores* relations_ = nullptr;
  const InstanceEquivalences* partial_instances_ = nullptr;
  std::vector<uint8_t> done_;
  std::vector<uint32_t> shards_;
  std::vector<std::string> payloads_;
};

}  // namespace

Aligner::Aligner(const ontology::Ontology& left,
                 const ontology::Ontology& right, AlignmentConfig config)
    : left_(left), right_(right), config_(config),
      matcher_factory_(IdentityMatcherFactory()) {
  if (config_.instance_threshold < 0.0) {
    config_.instance_threshold = config_.theta;
  }
}

AlignmentResult Aligner::Run() { return RunInternal(nullptr); }

AlignmentResult Aligner::Resume(AlignmentResult checkpoint) {
  return RunInternal(&checkpoint);
}

AlignmentResult Aligner::Realign(RealignSeed seed) {
  return RunInternal(nullptr, &seed);
}

AlignmentResult Aligner::RunInternal(AlignmentResult* checkpoint,
                                     RealignSeed* seed) {
  // Every duration below comes from one clock: an obs::Span, which times
  // itself even with no trace recorder attached. `pass_timings`, the
  // iteration records, and --trace-json therefore always agree.
  const size_t obs_slot = obs_.main_slot();
  obs::Span total_span(obs_.trace, obs_slot, "run", "align");
  obs::MetricId m_changed = 0;
  obs::MetricId m_gained = 0;
  obs::MetricId m_dropped = 0;
  obs::MetricId m_stable = 0;
  obs::MetricId m_score_delta = 0;
  if (obs_.metrics != nullptr) {
    m_changed = obs_.metrics->Counter("convergence.changed");
    m_gained = obs_.metrics->Counter("convergence.gained");
    m_dropped = obs_.metrics->Counter("convergence.dropped");
    m_stable = obs_.metrics->Counter("convergence.stable");
    m_score_delta = obs_.metrics->Histogram(
        "convergence.score_delta",
        std::vector<double>(std::begin(kScoreDeltaBounds),
                            std::end(kScoreDeltaBounds)));
  }
  AlignmentResult result;

  // Literal matchers, one per direction (§5.3).
  std::unique_ptr<LiteralMatcher> matcher_l2r = matcher_factory_();
  std::unique_ptr<LiteralMatcher> matcher_r2l = matcher_factory_();
  matcher_l2r->IndexTarget(right_);
  matcher_r2l->IndexTarget(left_);

  util::ThreadPool* pool = external_pool_;
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (pool == nullptr && config_.num_threads > 0) {
    owned_pool = std::make_unique<util::ThreadPool>(config_.num_threads);
    pool = owned_pool.get();
  }

  // The pipeline: one context carrying the per-iteration state and the
  // per-worker scratch, three passes scheduled over fixed shards.
  const size_t worker_slots =
      pool != nullptr && pool->num_threads() > 0 ? pool->num_threads() : 1;
  IterationContext ctx(worker_slots);
  ctx.left = &left_;
  ctx.right = &right_;
  ctx.config = &config_;
  ctx.matcher_l2r = matcher_l2r.get();
  ctx.matcher_r2l = matcher_r2l.get();
  ctx.obs = obs_;

  InstancePass instance_pass;
  RelationPass relation_pass;
  ClassPass class_pass;
  result.pass_timings = {PassTimings{"instance"}, PassTimings{"relation"},
                         PassTimings{"class"}};
  PassTimings& instance_times = result.pass_timings[kInstancePass];
  PassTimings& relation_times = result.pass_timings[kRelationPass];
  PassTimings& class_times = result.pass_timings[kClassPass];

  // The shard gate for the cancellable passes; the class pass reports
  // progress through the observer but ignores its verdict (it always
  // completes, keeping the result consistent).
  std::function<bool(const ShardProgress&)> cancellable_gate;
  std::function<bool(const ShardProgress&)> reporting_gate;
  if (shard_observer_) {
    cancellable_gate = shard_observer_;
    reporting_gate = [this](const ShardProgress& progress) {
      shard_observer_(progress);
      return true;
    };
  }

  // Periodic background checkpointing: piggyback on the scheduler's
  // serialized gate so every shard boundary can capture the pass's
  // completed state once the cadence elapses — which is why the
  // cancellable passes get a gate here even without a shard observer.
  const uint64_t io_retries_before = util::IoRetryCount();
  size_t shards_recovered = 0;
  std::unique_ptr<CheckpointWriter> ckpt_writer;
  PassCheckpointer checkpointer;
  if (!config_.checkpoint_dir.empty() && config_.checkpoint_interval > 0.0) {
    ckpt_writer = std::make_unique<CheckpointWriter>(
        CheckpointWriter::Options{config_.checkpoint_dir,
                                  config_.checkpoint_interval},
        left_, right_, config_, matcher_name_);
    const std::function<bool(const ShardProgress&)> inner = cancellable_gate;
    cancellable_gate = [&checkpointer, inner](const ShardProgress& progress) {
      checkpointer.OnShard(progress);
      return inner ? inner(progress) : true;
    };
  }

  // Semi-naive bookkeeping (core/worklist.h): the tracker diffs same-parity
  // fixpoint states (k vs k-2, matching the passes' two-generation slot
  // retention — the float attractor may be an exact 2-cycle), the worklist
  // carries the resulting dirty sets into the passes. Starts inactive — the
  // first iteration of any run (cold, resumed, or exhaustive) computes
  // everything; seeded re-alignments activate it below. `ctx.worklist`
  // stays bound for the whole run; the passes engage reuse only when
  // config_.semi_naive, the relevant set is active, and their retained
  // slots are complete.
  SemiNaiveTracker tracker(left_, right_);
  SemiNaiveWorklist worklist;
  ctx.worklist = &worklist;
  obs::MetricId m_dirty_instances = 0;
  obs::MetricId m_dirty_relations = 0;
  obs::MetricId m_changed_terms = 0;
  obs::MetricId m_changed_rels = 0;
  if (obs_.metrics != nullptr) {
    m_dirty_instances = obs_.metrics->Counter("seminaive.dirty_instances");
    m_dirty_relations = obs_.metrics->Counter("seminaive.dirty_relations");
    m_changed_terms = obs_.metrics->Counter("seminaive.changed_terms");
    m_changed_rels = obs_.metrics->Counter("seminaive.changed_relations");
  }

  InstanceEquivalences previous;  // empty: first iteration has no equalities
  RelationScores rel_scores;
  // Two-back (same-parity) states feeding the tracker's diffs. On a cold
  // start they hold the empty store / θ-bootstrap: the diff against empty
  // marks everything (sound), and the bootstrap table is incomparable, so
  // the instance worklist first activates at iteration 3 and reuse first
  // engages at iteration 4 — once every retained slot's inputs really are
  // two comparable states apart.
  InstanceEquivalences prev_prev;
  RelationScores prev_prev_scores = RelationScores::Bootstrap(config_.theta);
  int start_iteration = 1;
  const bool seeded = seed != nullptr;
  bool finished = false;  // checkpoint already converged / exhausted the cap
  std::optional<PartialIterationState> resume_partial;
  if (seeded) {
    // Incremental re-alignment: the completed base run's tables are the
    // previous-iteration state, and the first instance pass recomputes only
    // the delta's structural cone. The base run converged, so its tables
    // stand in for *both* parities of history: the first iterations' diffs
    // then measure only what the delta actually moved.
    previous = std::move(seed->instances);
    rel_scores = std::move(seed->relations);
    prev_prev = previous;
    prev_prev_scores = rel_scores;
    if (config_.semi_naive) {
      instance_pass.SeedResults(left_, previous);
      tracker.SeedRealignInstanceWorklist(
          previous, matcher_r2l.get(), seed->left_touched_terms,
          seed->right_touched_terms, &worklist);
      if (obs_.metrics != nullptr) {
        obs_.metrics->Add(m_dirty_instances, obs_slot,
                          worklist.num_dirty_instances);
      }
      PARIS_LOG(kInfo) << "realign: " << worklist.num_dirty_instances << " of "
                       << left_.instances().size()
                       << " instances in the delta cone";
    }
  } else if (checkpoint != nullptr) {
    // Adopt the checkpoint's state exactly as iteration k left it; the loop
    // below continues at k+1 as if it had never stopped.
    start_iteration = static_cast<int>(checkpoint->iterations.size()) + 1;
    finished = checkpoint->converged_at > 0;
    result.iterations = std::move(checkpoint->iterations);
    result.converged_at = checkpoint->converged_at;
    previous = std::move(checkpoint->instances);
    rel_scores = std::move(checkpoint->relations);
    if (checkpoint->partial.has_value() && !finished &&
        checkpoint->partial->iteration == start_iteration) {
      resume_partial = std::move(checkpoint->partial);
    }
  } else {
    previous.Finalize();
    rel_scores = config_.use_relation_name_prior
                     ? NamePriorBootstrap(left_, right_, config_)
                     : RelationScores::Bootstrap(config_.theta);
  }
  if (!seeded) prev_prev.Finalize();  // empty two-back state, diffable

  for (int iteration = start_iteration;
       !finished && iteration <= config_.max_iterations; ++iteration) {
    IterationRecord record;
    record.index = iteration;
    ctx.iteration = iteration;
    ctx.previous = &previous;
    ctx.rel_scores = &rel_scores;
    PartialIterationState* adopt =
        resume_partial.has_value() && resume_partial->iteration == iteration
            ? &*resume_partial
            : nullptr;

    // Step 1: instance pass from the previous iteration's state. A resumed
    // iteration that was cancelled during its *relation* pass already has
    // the instance pass's (blended) output — adopt it outright.
    obs::Span iteration_span(obs_.trace, obs_slot, "iteration", "iteration",
                             iteration);
    obs::Span instance_span(obs_.trace, obs_slot, "pass", "instance",
                            iteration);
    if (adopt != nullptr && adopt->pass == kRelationPass) {
      ctx.current = std::move(adopt->instances);
    } else {
      obs::Span prepare_span(obs_.trace, obs_slot, "phase",
                             "instance.prepare", iteration);
      const size_t num_shards = instance_pass.Prepare(ctx);
      const std::vector<uint8_t> cached =
          AdoptShards(instance_pass, adopt, kInstancePass, num_shards, ctx);
      for (uint8_t done : cached) shards_recovered += done;
      instance_times.prepare_seconds += prepare_span.End();
      checkpointer.Bind(ckpt_writer.get(), &instance_pass, kInstancePass,
                        iteration, num_shards,
                        cached.empty() ? nullptr : &cached, &result, &previous,
                        &rel_scores, /*partial_instances=*/nullptr);
      obs::Span shards_span(obs_.trace, obs_slot, "phase", "instance.shards",
                            iteration);
      const ShardRunOutcome outcome =
          RunPassShards(instance_pass, num_shards, ctx, pool,
                        cancellable_gate, cached.empty() ? nullptr : &cached);
      instance_times.shard_seconds += shards_span.End();
      instance_times.shards_run += outcome.num_completed;
      if (!outcome.all_completed()) {
        // Mid-pass cancel: checkpoint the completed shards and wrap up from
        // the last completed iteration.
        result.partial.emplace(CapturePartial(instance_pass, kInstancePass,
                                              iteration, num_shards, outcome));
        break;
      }
      obs::Span merge_span(obs_.trace, obs_slot, "phase", "instance.merge",
                           iteration);
      instance_pass.Merge(ctx);
      if (config_.dampening > 0.0 && iteration > 1) {
        // Progressively increasing dampening factor (§5.1's convergence
        // device): λ grows toward `dampening` as iterations accumulate.
        const double lambda =
            config_.dampening * (1.0 - 1.0 / static_cast<double>(iteration));
        ctx.current =
            BlendEquivalences(previous, ctx.current, lambda,
                              config_.instance_threshold,
                              config_.max_candidates_per_instance);
      }
      instance_times.merge_seconds += merge_span.End();
      if (outcome.stopped) {
        // The cancel landed on the pass's final shard: the instance pass is
        // complete, so checkpoint its merged output and resume straight
        // into the relation pass.
        result.partial.emplace();
        result.partial->iteration = iteration;
        result.partial->pass = kRelationPass;
        result.partial->instances = std::move(ctx.current);
        break;
      }
    }
    record.seconds_instances = instance_span.End();
    if (config_.semi_naive) {
      // Diff the same-parity equivalence stores (two-back vs fresh): drives
      // this iteration's relation worklist — whose pass reuses two-back
      // slots — and, joined with the same-parity score diff after the
      // relation pass, the next instance worklist.
      tracker.ObserveInstances(prev_prev, ctx.current);
      tracker.SeedRelationWorklist(&worklist);
      if (obs_.metrics != nullptr) {
        obs_.metrics->Add(m_dirty_relations, obs_slot,
                          worklist.num_dirty_relations);
        obs_.metrics->Add(m_changed_terms, obs_slot,
                          tracker.num_changed_left_terms() +
                              tracker.num_changed_right_terms());
      }
    }
    record.num_left_aligned = ctx.current.num_left_aligned();
    record.change_fraction = ctx.current.MaxAssignmentChangeFraction(previous);
    // Convergence telemetry: what this iteration moved, per entity and per
    // instance-pass shard. Recomputing the layout here (instead of asking
    // the pass) keeps the adopted-instance-pass resume path covered too.
    record.telemetry = ComputeConvergenceTelemetry(
        left_.instances(),
        ShardLayout::Make(left_.instances().size(), config_.num_shards),
        previous, ctx.current);
    if (obs_.metrics != nullptr) {
      obs_.metrics->Add(m_changed, obs_slot, record.telemetry.changed);
      obs_.metrics->Add(m_gained, obs_slot, record.telemetry.gained);
      obs_.metrics->Add(m_dropped, obs_slot, record.telemetry.dropped);
      obs_.metrics->Add(m_stable, obs_slot, record.telemetry.stable);
      obs_.metrics->MergeCounts(m_score_delta, obs_slot,
                                record.telemetry.score_delta_counts);
    }

    // Step 2: relation pass from the fresh equivalences.
    obs::Span relation_span(obs_.trace, obs_slot, "pass", "relation",
                            iteration);
    obs::Span rel_prepare_span(obs_.trace, obs_slot, "phase",
                               "relation.prepare", iteration);
    const size_t num_shards = relation_pass.Prepare(ctx);
    const std::vector<uint8_t> cached =
        AdoptShards(relation_pass, adopt, kRelationPass, num_shards, ctx);
    for (uint8_t done : cached) shards_recovered += done;
    relation_times.prepare_seconds += rel_prepare_span.End();
    checkpointer.Bind(ckpt_writer.get(), &relation_pass, kRelationPass,
                      iteration, num_shards, cached.empty() ? nullptr : &cached,
                      &result, &previous, &rel_scores,
                      /*partial_instances=*/&ctx.current);
    obs::Span rel_shards_span(obs_.trace, obs_slot, "phase",
                              "relation.shards", iteration);
    const ShardRunOutcome outcome =
        RunPassShards(relation_pass, num_shards, ctx, pool, cancellable_gate,
                      cached.empty() ? nullptr : &cached);
    relation_times.shard_seconds += rel_shards_span.End();
    relation_times.shards_run += outcome.num_completed;
    if (!outcome.all_completed()) {
      result.partial.emplace(CapturePartial(relation_pass, kRelationPass,
                                            iteration, num_shards, outcome));
      result.partial->instances = std::move(ctx.current);
      break;
    }
    obs::Span rel_merge_span(obs_.trace, obs_slot, "phase", "relation.merge",
                             iteration);
    relation_pass.Merge(ctx);
    relation_times.merge_seconds += rel_merge_span.End();
    if (config_.semi_naive) {
      // Diff same-parity score tables (incomparable while the two-back
      // table is the θ-bootstrap — the next instance pass then stays
      // exhaustive).
      tracker.ObserveScores(prev_prev_scores, ctx.fresh_scores);
    }
    prev_prev_scores = std::move(rel_scores);
    rel_scores = std::move(ctx.fresh_scores);
    if (config_.semi_naive) {
      tracker.SeedInstanceWorklist(&worklist);
      if (obs_.metrics != nullptr) {
        obs_.metrics->Add(m_dirty_instances, obs_slot,
                          worklist.num_dirty_instances);
        obs_.metrics->Add(m_changed_rels, obs_slot,
                          tracker.num_changed_relations());
      }
    }
    record.seconds_relations = relation_span.End();
    resume_partial.reset();  // fully consumed once its iteration completes

    if (config_.record_history) {
      record.max_left = ctx.current.max_left();
      record.max_right = ctx.current.max_right();
      record.relations = rel_scores;
    }
    PARIS_LOG(kInfo) << "iteration " << iteration << ": aligned "
                     << record.num_left_aligned << " instances, change "
                     << record.change_fraction << ", "
                     << record.seconds_instances + record.seconds_relations
                     << "s";
    result.iterations.push_back(std::move(record));

    const bool keep_going =
        !iteration_observer_ || iteration_observer_(result.iterations.back());
    // A cold run must complete two iterations before the change fraction
    // means anything (iteration 1 compares against the empty store); a
    // seeded re-alignment starts from a converged state, so iteration 1's
    // fraction is already a real measurement.
    bool converged =
        (iteration > 1 || seeded) &&
        result.iterations.back().change_fraction <
            config_.convergence_threshold;
    if (!converged && config_.semi_naive &&
        tracker.ExactFixpoint(previous, ctx.current, prev_prev_scores,
                              rel_scores)) {
      // Drain-stop: two *consecutive* states are bit-identical, so every
      // further iteration reproduces this state byte-for-byte — stopping
      // now leaves the final tables identical to an exhaustive run at any
      // larger cap. (A period-2 lock never triggers this; those runs keep
      // iterating at near-zero marginal cost so the output stays dependent
      // on the cap's parity, exactly like the exhaustive baseline.)
      converged = true;
      PARIS_LOG(kInfo) << "iteration " << iteration
                       << ": exact fixpoint, stopping";
    }
    prev_prev = std::move(previous);
    previous = std::move(ctx.current);
    if (converged) {
      result.converged_at = iteration;
      break;
    }
    // Cooperative stop at the iteration boundary: the iteration observer
    // declined to continue, or a shard-level cancel landed on the relation
    // pass's final shard (the iteration still completed). Falls through to
    // the class pass so the partial result stays consistent and resumable.
    if (!keep_going || outcome.stopped) break;
  }

  // Final step: class pass from the last completed assignment (§4.3 —
  // computed only after the instance equivalences). Runs even after a
  // mid-iteration cancel: the interrupted iteration lives in
  // `result.partial`, while the tables below all reflect `previous`.
  ctx.iteration = static_cast<int>(result.iterations.size());
  ctx.previous = &previous;
  obs::Span class_span(obs_.trace, obs_slot, "pass", "class", ctx.iteration);
  obs::Span class_prepare_span(obs_.trace, obs_slot, "phase", "class.prepare",
                               ctx.iteration);
  const size_t class_shards = class_pass.Prepare(ctx);
  class_times.prepare_seconds += class_prepare_span.End();
  obs::Span class_shards_span(obs_.trace, obs_slot, "phase", "class.shards",
                              ctx.iteration);
  const ShardRunOutcome class_outcome =
      RunPassShards(class_pass, class_shards, ctx, pool, reporting_gate);
  class_times.shard_seconds += class_shards_span.End();
  class_times.shards_run += class_outcome.num_completed;
  obs::Span class_merge_span(obs_.trace, obs_slot, "phase", "class.merge",
                             ctx.iteration);
  class_pass.Merge(ctx);
  class_times.merge_seconds += class_merge_span.End();
  result.classes = std::move(ctx.classes);
  result.seconds_classes = class_span.End();

  result.instances = std::move(previous);
  result.relations = std::move(rel_scores);
  // Drain the checkpointer (joins its background write) before reading its
  // final count; a run that ends normally keeps its last checkpoint on disk
  // for post-mortems, and the next run in the directory supersedes it.
  uint64_t checkpoints_written = 0;
  if (ckpt_writer != nullptr) {
    ckpt_writer->Drain();
    checkpoints_written = ckpt_writer->checkpoints_written();
  }
  result.seconds_total = total_span.End();
  if (obs_.metrics != nullptr) {
    obs_.metrics->SetGauge(obs_.metrics->Gauge("run.iterations"),
                           static_cast<int64_t>(result.iterations.size()));
    obs_.metrics->SetGauge(obs_.metrics->Gauge("run.converged_at"),
                           result.converged_at);
    obs_.metrics->SetGauge(
        obs_.metrics->Gauge("run.instances_aligned"),
        static_cast<int64_t>(result.instances.num_left_aligned()));
    // Durability counters (src/obs/README.md): zero in an undisturbed,
    // uncheckpointed run, so enabling observability still never changes
    // any deterministic output.
    obs_.metrics->Add(obs_.metrics->Counter("durability.checkpoints_written"),
                      obs_slot, checkpoints_written);
    obs_.metrics->Add(obs_.metrics->Counter("durability.shards_recovered"),
                      obs_slot, static_cast<uint64_t>(shards_recovered));
    obs_.metrics->Add(obs_.metrics->Counter("durability.io_retries"), obs_slot,
                      util::IoRetryCount() - io_retries_before);
  }
  return result;
}

}  // namespace paris::core
