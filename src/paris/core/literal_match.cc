#include "paris/core/literal_match.h"

#include <algorithm>
#include <cctype>

#include "paris/util/string_util.h"

namespace paris::core {

// ---------------------------------------------------------------------------
// IdentityLiteralMatcher
// ---------------------------------------------------------------------------

void IdentityLiteralMatcher::IndexTarget(const ontology::Ontology& target) {
  target_store_ = &target.store();
}

void IdentityLiteralMatcher::Match(rdf::TermId literal,
                                   std::vector<Candidate>* out) const {
  if (target_store_ != nullptr && target_store_->ContainsTerm(literal)) {
    out->push_back(Candidate{literal, 1.0});
  }
}

// ---------------------------------------------------------------------------
// NormalizingLiteralMatcher
// ---------------------------------------------------------------------------

void NormalizingLiteralMatcher::IndexTarget(const ontology::Ontology& target) {
  pool_ = &target.pool();
  for (rdf::TermId t : target.store().terms()) {
    if (!pool_->IsLiteral(t)) continue;
    buckets_[util::NormalizeAlnum(pool_->lexical(t))].push_back(t);
  }
  for (auto& [norm, ids] : buckets_) {
    std::sort(ids.begin(), ids.end());
  }
}

void NormalizingLiteralMatcher::Match(rdf::TermId literal,
                                      std::vector<Candidate>* out) const {
  if (pool_ == nullptr) return;
  auto it = buckets_.find(util::NormalizeAlnum(pool_->lexical(literal)));
  if (it == buckets_.end()) return;
  for (rdf::TermId t : it->second) {
    out->push_back(Candidate{t, 1.0});
  }
}

// ---------------------------------------------------------------------------
// FuzzyLiteralMatcher
// ---------------------------------------------------------------------------

void FuzzyLiteralMatcher::IndexTarget(const ontology::Ontology& target) {
  pool_ = &target.pool();
  for (rdf::TermId t : target.store().terms()) {
    if (!pool_->IsLiteral(t)) continue;
    const uint32_t slot = static_cast<uint32_t>(target_literals_.size());
    target_literals_.push_back(t);
    normalized_.push_back(util::NormalizeAlnum(pool_->lexical(t)));
    for (uint32_t key : util::TrigramKeys(normalized_.back())) {
      trigram_index_[key].push_back(slot);
    }
  }
}

void FuzzyLiteralMatcher::Match(rdf::TermId literal,
                                std::vector<Candidate>* out) const {
  if (pool_ == nullptr) return;
  const std::string norm = util::NormalizeAlnum(pool_->lexical(literal));
  const std::vector<uint32_t> keys = util::TrigramKeys(norm);
  // Count shared trigrams per candidate slot.
  std::unordered_map<uint32_t, uint32_t> shared;
  for (uint32_t key : keys) {
    auto it = trigram_index_.find(key);
    if (it == trigram_index_.end()) continue;
    for (uint32_t slot : it->second) ++shared[slot];
  }
  // A candidate must share at least half of the query's trigrams before we
  // pay for an edit distance (cheap pre-filter; exact matches always pass).
  const uint32_t min_shared =
      static_cast<uint32_t>((keys.size() + 1) / 2);
  std::vector<Candidate> scored;
  for (const auto& [slot, count] : shared) {
    if (count < min_shared) continue;
    const double sim = util::EditSimilarity(norm, normalized_[slot]);
    if (sim >= min_similarity_) {
      scored.push_back(Candidate{target_literals_[slot], sim});
    }
  }
  auto better = [](const Candidate& a, const Candidate& b) {
    return a.prob != b.prob ? a.prob > b.prob : a.other < b.other;
  };
  std::sort(scored.begin(), scored.end(), better);
  if (scored.size() > max_candidates_) scored.resize(max_candidates_);
  out->insert(out->end(), scored.begin(), scored.end());
}

// ---------------------------------------------------------------------------
// TokenJaccardMatcher
// ---------------------------------------------------------------------------

std::vector<std::string> TokenJaccardMatcher::Tokens(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

void TokenJaccardMatcher::IndexTarget(const ontology::Ontology& target) {
  pool_ = &target.pool();
  for (rdf::TermId t : target.store().terms()) {
    if (!pool_->IsLiteral(t)) continue;
    const uint32_t slot = static_cast<uint32_t>(target_literals_.size());
    target_literals_.push_back(t);
    target_tokens_.push_back(Tokens(pool_->lexical(t)));
    for (const std::string& token : target_tokens_.back()) {
      token_index_[token].push_back(slot);
    }
  }
}

void TokenJaccardMatcher::Match(rdf::TermId literal,
                                std::vector<Candidate>* out) const {
  if (pool_ == nullptr) return;
  const std::vector<std::string> tokens = Tokens(pool_->lexical(literal));
  if (tokens.empty()) return;
  std::unordered_map<uint32_t, uint32_t> shared;
  for (const std::string& token : tokens) {
    auto it = token_index_.find(token);
    if (it == token_index_.end()) continue;
    for (uint32_t slot : it->second) ++shared[slot];
  }
  std::vector<Candidate> scored;
  for (const auto& [slot, count] : shared) {
    const size_t union_size =
        tokens.size() + target_tokens_[slot].size() - count;
    const double jaccard =
        static_cast<double>(count) / static_cast<double>(union_size);
    if (jaccard >= min_similarity_) {
      scored.push_back(Candidate{target_literals_[slot], jaccard});
    }
  }
  auto better = [](const Candidate& a, const Candidate& b) {
    return a.prob != b.prob ? a.prob > b.prob : a.other < b.other;
  };
  std::sort(scored.begin(), scored.end(), better);
  if (scored.size() > max_candidates_) scored.resize(max_candidates_);
  out->insert(out->end(), scored.begin(), scored.end());
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

LiteralMatcherFactory IdentityMatcherFactory() {
  return [] { return std::make_unique<IdentityLiteralMatcher>(); };
}

LiteralMatcherFactory NormalizingMatcherFactory() {
  return [] { return std::make_unique<NormalizingLiteralMatcher>(); };
}

LiteralMatcherFactory FuzzyMatcherFactory(double min_similarity,
                                          size_t max_candidates) {
  return [min_similarity, max_candidates] {
    return std::make_unique<FuzzyLiteralMatcher>(min_similarity,
                                                 max_candidates);
  };
}

}  // namespace paris::core
