#include "paris/core/instance_align.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "paris/core/worklist.h"

namespace paris::core {

// Per-fact expansion of the second argument to its right-ontology
// equivalents, computed once per instance and shared between the positive-
// and negative-evidence passes. In negative-evidence mode `equivalents` is
// sorted by term id so the per-candidate-fact lookup in
// NegativeEvidenceFactor is a binary search instead of a linear scan.
// Namespace-scope (not anonymous) because InstanceShardScratch embeds it.
struct ExpandedFact {
  rdf::RelId rel = rdf::kNullRel;  // r with r(x, y), signed
  std::vector<Candidate> equivalents;  // y' with Pr(y ≡ y') > 0
};

// Per-worker scratch, owned by the IterationContext so the containers'
// capacity survives across shards and iterations. Bucket layouts therefore
// depend on what a worker processed before — harmless, because every
// consumer below sorts (or keys) its output instead of leaking map order.
struct InstanceShardScratch {
  std::vector<ExpandedFact> expanded;
  std::unordered_map<rdf::TermId, double> product;
};

namespace {

// Computes the positive-evidence score of Eq. (13) for every candidate x',
// returning candidate → ∏ (1 - Pr(r'⊆r)·fun⁻¹(r)·Pr(y≡y'))
//                        (1 - Pr(r⊆r')·fun⁻¹(r')·Pr(y≡y')).
void AccumulatePositiveEvidence(
    const std::vector<ExpandedFact>& facts, const ontology::Ontology& left,
    const ontology::Ontology& right, const RelationScores& rel_scores,
    const AlignmentConfig& config,
    std::unordered_map<rdf::TermId, double>* product) {
  const auto variant = config.functionality_variant;
  for (const ExpandedFact& ef : facts) {
    const double fun_inv_r =
        left.functionality().GlobalInverse(ef.rel, variant);
    for (const Candidate& y_eq : ef.equivalents) {
      const auto neighbor_facts = right.FactsAbout(y_eq.other);
      if (neighbor_facts.size() > config.max_neighbor_fanout) continue;
      for (const rdf::Fact& nf : neighbor_facts) {
        // Adjacency entry nf = (rt, x') of y' encodes statement rt(y', x'),
        // i.e. r'(x', y') with r' = rt⁻¹.
        const rdf::RelId r_prime = rdf::Inverse(nf.rel);
        const rdf::TermId x_prime = nf.other;
        if (!right.IsInstanceTerm(x_prime)) continue;
        const double p_sub_rl = rel_scores.SubRightLeft(r_prime, ef.rel);
        const double p_sub_lr = rel_scores.SubLeftRight(ef.rel, r_prime);
        if (p_sub_rl <= 0.0 && p_sub_lr <= 0.0) continue;
        const double fun_inv_rp =
            right.functionality().GlobalInverse(r_prime, variant);
        const double factor =
            (1.0 - p_sub_rl * fun_inv_r * y_eq.prob) *
            (1.0 - p_sub_lr * fun_inv_rp * y_eq.prob);
        if (factor >= 1.0) continue;
        auto [it, inserted] = product->emplace(x_prime, 1.0);
        it->second *= factor;
      }
    }
  }
}

// The negative-evidence multiplier of Eq. (14) for one candidate x'.
//
// Per the maximal-assignment principle of §5.2, each statement r(x, y) is
// checked against the *maximally contained* counterpart relation r' of r
// (one per containment direction) instead of every relation pair: the
// factor uses inner = ∏_{y' : r'(x', y')} (1 - Pr(y ≡ y')), which is 1 when
// x' has no r'-statements — decreasing Pr(x ≡ x') when x has relations that
// x' lacks, as §4.2 prescribes. Note the paper's Eq. (14) prints
// Pr(x ≡ x') inside the inner product; following its derivation from
// Eq. (6) it must be Pr(y ≡ y'), which is what we implement.
double NegativeEvidenceFactor(
    const std::vector<ExpandedFact>& facts, const ontology::Ontology& left,
    const ontology::Ontology& right,
    const std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>>&
        right_sub_left,
    const std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>>&
        left_sub_right,
    const AlignmentConfig& config, rdf::TermId x_prime) {
  const auto variant = config.functionality_variant;
  // One dictionary lookup for x'; each r' range below is a probe of the
  // index's per-term relation directory (log of x''s *distinct relation*
  // count, not of its full degree — the win on hub entities).
  const auto cursor = right.store().CursorFor(x_prime);

  auto inner_product = [&](const ExpandedFact& ef, rdf::RelId r_prime) {
    double inner = 1.0;
    for (const rdf::Fact& cf : cursor.FactsWith(r_prime)) {
      // `equivalents` is sorted by term id (see RunShard).
      auto it = std::lower_bound(
          ef.equivalents.begin(), ef.equivalents.end(), cf.other,
          [](const Candidate& c, rdf::TermId t) { return c.other < t; });
      const double p =
          it != ef.equivalents.end() && it->other == cf.other ? it->prob : 0.0;
      inner *= (1.0 - p);
    }
    return inner;
  };

  double result = 1.0;
  for (const ExpandedFact& ef : facts) {
    auto rl = right_sub_left.find(ef.rel);
    if (rl != right_sub_left.end()) {
      const auto [r_prime, score] = rl->second;
      const double fun_r = left.functionality().Global(ef.rel, variant);
      result *= (1.0 - fun_r * score * inner_product(ef, r_prime));
    }
    auto lr = left_sub_right.find(ef.rel);
    if (lr != left_sub_right.end()) {
      const auto [r_prime, score] = lr->second;
      const double fun_rp = right.functionality().Global(r_prime, variant);
      result *= (1.0 - fun_rp * score * inner_product(ef, r_prime));
    }
  }
  return result;
}

}  // namespace

size_t InstancePass::Prepare(IterationContext& ctx) {
  const AlignmentConfig& config = *ctx.config;
  layout_ = ShardLayout::Make(ctx.left->instances().size(), config.num_shards);
  l2r_ = ctx.Direction(true, ctx.previous);

  // Each left relation's maximally contained counterpart on the right, in
  // both containment directions, for the negative-evidence pass. Only
  // scores strictly above θ qualify (§5.2 thresholding) — in particular the
  // θ-uniform bootstrap table of iteration 1 contributes no negative
  // evidence, which is what lets the fixpoint start at all: under a literal
  // reading of Eq. (14), the product over *every* relation pair at score θ
  // multiplies hundreds of small penalties and extinguishes every match
  // before any real containment is known.
  best_ = BestCounterparts{};
  if (config.use_negative_evidence) {
    auto update = [](auto& map, rdf::RelId key, rdf::RelId value,
                     double score) {
      auto [it, inserted] = map.emplace(key, std::make_pair(value, score));
      if (!inserted && score > it->second.second) {
        it->second = {value, score};
      }
    };
    for (const RelationAlignmentEntry& e : ctx.rel_scores->Entries()) {
      if (e.score <= config.theta) continue;
      if (e.sub_is_left) {
        // Pr(left e.sub ⊆ right e.super); also its inverted twin.
        update(best_.left_sub_right, e.sub, e.super, e.score);
        update(best_.left_sub_right, rdf::Inverse(e.sub),
               rdf::Inverse(e.super), e.score);
      } else {
        // Pr(right e.sub ⊆ left e.super).
        update(best_.right_sub_left, e.super, e.sub, e.score);
        update(best_.right_sub_left, rdf::Inverse(e.super),
               rdf::Inverse(e.sub), e.score);
      }
    }
  }

  // Reuse is safe only when this generation's retained slots are the
  // previous same-parity iteration's complete output over the same item
  // space as the worklist's bitmap.
  gen_ = prepare_count_ % 2;
  ++prepare_count_;
  reuse_ = config.semi_naive && ctx.worklist != nullptr &&
           ctx.worklist->instances_active && have_results_[gen_] &&
           results_[gen_].size() == layout_.total &&
           ctx.worklist->dirty_instances.size() == layout_.total;
  results_[gen_].resize(layout_.total);
  if (!reuse_) {
    for (auto& slot : results_[gen_]) slot.clear();
  }
  scratch_ = &ctx.ScratchSlots<InstanceShardScratch>();  // serial phase
  if (ctx.obs.metrics != nullptr) {  // serial phase: registration may allocate
    entities_scored_ = ctx.obs.metrics->Counter("instance.entities_scored");
    entities_reused_ = ctx.obs.metrics->Counter("instance.entities_reused");
    entities_with_candidates_ =
        ctx.obs.metrics->Counter("instance.entities_with_candidates");
    candidates_emitted_ =
        ctx.obs.metrics->Counter("instance.candidates_emitted");
  }
  return layout_.num_shards;
}

void InstancePass::SeedResults(const ontology::Ontology& left,
                               const InstanceEquivalences& seed) {
  const std::vector<rdf::TermId>& instances = left.instances();
  for (size_t g = 0; g < 2; ++g) {
    results_[g].assign(instances.size(), {});
    for (size_t i = 0; i < instances.size(); ++i) {
      const auto span = seed.LeftToRight(instances[i]);
      results_[g][i].assign(span.begin(), span.end());
    }
    have_results_[g] = true;
  }
}

void InstancePass::RunShard(size_t shard, size_t worker,
                            IterationContext& ctx) {
  const ontology::Ontology& left = *ctx.left;
  const ontology::Ontology& right = *ctx.right;
  const AlignmentConfig& config = *ctx.config;
  const RelationScores& rel_scores = *ctx.rel_scores;
  const std::vector<rdf::TermId>& instances = left.instances();
  InstanceShardScratch& scratch = (*scratch_)[worker];
  std::vector<ExpandedFact>& expanded = scratch.expanded;
  std::unordered_map<rdf::TermId, double>& product = scratch.product;

  std::vector<std::vector<Candidate>>& results = results_[gen_];
  size_t computed = 0;
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    // Clean instance: the retained slot (from the previous same-parity
    // iteration) already holds exactly what this iteration would recompute.
    if (reuse_ && ctx.worklist->dirty_instances[i] == 0) continue;
    const rdf::TermId x = instances[i];
    ++computed;
    results[i].clear();
    expanded.clear();
    product.clear();
    for (const rdf::Fact& f : left.FactsAbout(x)) {
      ExpandedFact ef;
      ef.rel = f.rel;
      l2r_.AppendEquivalents(f.other, &ef.equivalents);
      if (!ef.equivalents.empty() || config.use_negative_evidence) {
        if (config.use_negative_evidence) {
          // The sort only feeds NegativeEvidenceFactor's binary search;
          // don't pay for it in the positive-only default mode.
          std::sort(ef.equivalents.begin(), ef.equivalents.end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.other < b.other;
                    });
        }
        expanded.push_back(std::move(ef));
      }
    }
    if (expanded.empty()) continue;

    AccumulatePositiveEvidence(expanded, left, right, rel_scores, config,
                               &product);
    if (product.empty()) continue;

    std::vector<Candidate> candidates;
    candidates.reserve(product.size());
    for (const auto& [x_prime, prod] : product) {
      double score = 1.0 - prod;
      if (config.use_negative_evidence) {
        score *= NegativeEvidenceFactor(expanded, left, right,
                                        best_.right_sub_left,
                                        best_.left_sub_right, config, x_prime);
      }
      if (score >= config.instance_threshold) {
        candidates.push_back(Candidate{x_prime, score});
      }
    }
    if (candidates.empty()) continue;
    auto better = [](const Candidate& a, const Candidate& b) {
      return a.prob != b.prob ? a.prob > b.prob : a.other < b.other;
    };
    std::sort(candidates.begin(), candidates.end(), better);
    if (candidates.size() > config.max_candidates_per_instance) {
      candidates.resize(config.max_candidates_per_instance);
    }
    results[i] = std::move(candidates);
  }
  if (ctx.obs.metrics != nullptr) {
    uint64_t with_candidates = 0;
    uint64_t emitted = 0;
    for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
      if (!results[i].empty()) {
        ++with_candidates;
        emitted += results[i].size();
      }
    }
    ctx.obs.metrics->Add(entities_scored_, worker, computed);
    ctx.obs.metrics->Add(entities_reused_, worker,
                         layout_.end(shard) - layout_.begin(shard) - computed);
    ctx.obs.metrics->Add(entities_with_candidates_, worker, with_candidates);
    ctx.obs.metrics->Add(candidates_emitted_, worker, emitted);
  }
}

void InstancePass::Merge(IterationContext& ctx) {
  const std::vector<rdf::TermId>& instances = ctx.left->instances();
  // Under semi_naive the slots are copied, not drained: the next iteration
  // reuses them for instances its worklist marks clean.
  const bool keep = ctx.config->semi_naive;
  std::vector<std::vector<Candidate>>& results = results_[gen_];
  InstanceEquivalences equiv;
  for (size_t i = 0; i < layout_.total; ++i) {
    if (results[i].empty()) continue;
    if (keep) {
      equiv.Set(instances[i], results[i]);
    } else {
      equiv.Set(instances[i], std::move(results[i]));
    }
  }
  equiv.Finalize();
  ctx.current = std::move(equiv);
  have_results_[gen_] = keep;
}

void InstancePass::SaveShard(size_t shard, std::string* out) const {
  PayloadWriter writer;
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    writer.U32(static_cast<uint32_t>(results_[gen_][i].size()));
    for (const Candidate& c : results_[gen_][i]) {
      writer.U32(c.other);
      writer.F64(c.prob);
    }
  }
  *out = writer.Take();
}

bool InstancePass::LoadShard(size_t shard, std::string_view bytes,
                             IterationContext& ctx) {
  const size_t pool_size = ctx.left->pool().size();
  PayloadReader reader(bytes);
  // Decode into a staging area first so a payload rejected mid-way leaves
  // the slots untouched (the shard then simply recomputes).
  std::vector<std::vector<Candidate>> staged(layout_.end(shard) -
                                             layout_.begin(shard));
  for (auto& slot : staged) {
    uint32_t count = 0;
    if (!reader.U32(&count) ||
        count > ctx.config->max_candidates_per_instance) {
      return false;
    }
    slot.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      Candidate c;
      if (!reader.U32(&c.other) || !reader.F64(&c.prob)) return false;
      if (static_cast<size_t>(c.other) >= pool_size || !(c.prob > 0.0) ||
          c.prob > 1.0) {
        return false;
      }
      // The Set contract: sorted by descending prob, ties by ascending id.
      if (j > 0 &&
          !(slot.back().prob > c.prob ||
            (slot.back().prob == c.prob && slot.back().other < c.other))) {
        return false;
      }
      slot.push_back(c);
    }
  }
  if (!reader.AtEnd()) return false;
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    results_[gen_][i] = std::move(staged[i - layout_.begin(shard)]);
  }
  return true;
}

}  // namespace paris::core
