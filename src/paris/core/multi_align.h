#ifndef PARIS_CORE_MULTI_ALIGN_H_
#define PARIS_CORE_MULTI_ALIGN_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "paris/core/aligner.h"
#include "paris/core/config.h"
#include "paris/core/literal_match.h"
#include "paris/ontology/ontology.h"

namespace paris::core {

// Alignment of more than two ontologies — the §7 future-work item ("It
// would also be interesting to apply paris to more than two ontologies").
//
// PARIS is run on every ontology pair; entities whose maximal assignments
// are *reciprocal* (x's best counterpart is x' and x''s best counterpart is
// x) are merged into cross-ontology equivalence clusters with a union-find.
// Reciprocity keeps the clusters conservative: a one-sided weak assignment
// never glues two clusters together.

// One member of a cluster: (ontology index, term).
struct ClusterMember {
  size_t ontology = 0;
  rdf::TermId term = rdf::kNullTerm;

  friend bool operator==(const ClusterMember& a, const ClusterMember& b) {
    return a.ontology == b.ontology && a.term == b.term;
  }
};

// An equivalence cluster across ontologies, members sorted by
// (ontology, term).
struct EntityCluster {
  std::vector<ClusterMember> members;
  // The smallest reciprocal-match probability along the spanning edges that
  // formed this cluster (a conservative confidence estimate).
  double min_edge_prob = 1.0;
};

struct MultiAlignmentResult {
  // Clusters with ≥ 2 members, sorted by size (largest first), then by the
  // first member.
  std::vector<EntityCluster> clusters;
  // The pairwise results, indexed by the pair list passed to Run().
  std::vector<AlignmentResult> pairwise;
  // The (i, j) ontology-index pairs, i < j, in pairwise order.
  std::vector<std::pair<size_t, size_t>> pairs;
};

// Runs PARIS over every pair of the given ontologies (which must share one
// TermPool) and clusters the reciprocal matches.
class MultiAligner {
 public:
  explicit MultiAligner(std::vector<const ontology::Ontology*> ontologies,
                        AlignmentConfig config = {})
      : ontologies_(std::move(ontologies)), config_(config) {}

  void set_literal_matcher_factory(LiteralMatcherFactory factory) {
    matcher_factory_ = std::move(factory);
  }

  MultiAlignmentResult Run();

 private:
  std::vector<const ontology::Ontology*> ontologies_;
  AlignmentConfig config_;
  LiteralMatcherFactory matcher_factory_;
};

}  // namespace paris::core

#endif  // PARIS_CORE_MULTI_ALIGN_H_
