#ifndef PARIS_CORE_EQUIV_H_
#define PARIS_CORE_EQUIV_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "paris/rdf/term.h"
#include "paris/util/status.h"

namespace paris::storage {
class SnapshotReader;
class SnapshotWriter;
}  // namespace paris::storage

namespace paris::core {

class InstanceEquivalences;

// Result-snapshot section I/O (src/core/result_snapshot.h); friends of
// InstanceEquivalences.
void SaveInstanceEquivalences(const InstanceEquivalences& equiv,
                              storage::SnapshotWriter& writer);
util::StatusOr<InstanceEquivalences> LoadInstanceEquivalences(
    storage::SnapshotReader& reader, size_t pool_size);

// One equivalence candidate: another ontology's term with Pr(x ≡ other).
struct Candidate {
  rdf::TermId other = rdf::kNullTerm;
  double prob = 0.0;

  friend bool operator==(const Candidate& a, const Candidate& b) {
    return a.other == b.other && a.prob == b.prob;
  }
};

// Sparse bidirectional store of instance-equivalence probabilities between a
// "left" and a "right" ontology. Only strictly positive (above-threshold)
// probabilities are stored (§5.2: unknown and zero coincide in the
// positive-evidence equations).
//
// Build protocol: `Set()` candidate lists (computed left→right), then
// `Finalize()` once to derive the transpose and both maximal assignments.
// Reads are valid (and thread-safe) only after finalization.
class InstanceEquivalences {
 public:
  InstanceEquivalences() = default;

  // Sets the candidates of `left`; `candidates` must be sorted by
  // descending probability (ties broken by ascending id). Empty lists are
  // allowed and equivalent to not calling Set.
  void Set(rdf::TermId left, std::vector<Candidate> candidates);

  // Builds the transpose and the two maximal assignments.
  void Finalize();
  bool finalized() const { return finalized_; }

  // All equivalents with positive probability, best first.
  std::span<const Candidate> LeftToRight(rdf::TermId left) const;
  std::span<const Candidate> RightToLeft(rdf::TermId right) const;

  // The maximal assignment (§4.2): the single best counterpart, ties broken
  // deterministically by smallest term id. Null if none.
  const Candidate* MaxOfLeft(rdf::TermId left) const;
  const Candidate* MaxOfRight(rdf::TermId right) const;

  const std::unordered_map<rdf::TermId, Candidate>& max_left() const {
    return max_left_;
  }
  const std::unordered_map<rdf::TermId, Candidate>& max_right() const {
    return max_right_;
  }

  // Number of left instances with at least one candidate.
  size_t num_left_aligned() const { return left_to_right_.size(); }

  // Fraction of left entities whose maximal assignment differs from
  // `previous` (the convergence criterion of §5.1/§6.1). The denominator is
  // the number of entities assigned in either store (≥ 1).
  double MaxAssignmentChangeFraction(const InstanceEquivalences& previous) const;

  // Appends to `out` every left term whose full candidate list differs
  // between `*this` and `other`: gained a list, lost it, or any candidate's
  // probability moved (exact double comparison — the semi-naive fixpoint
  // reuses a slot only when its inputs are bit-identical). Full-list
  // equality implies maximal-assignment equality, so one diff is sound for
  // both the maximal-only and full-equalities evidence modes. `out` is
  // sorted ascending and deduplicated on return.
  void DiffLeftTerms(const InstanceEquivalences& other,
                     std::vector<rdf::TermId>* out) const;
  // Same over right terms (the transposed lists); both stores must be
  // finalized.
  void DiffRightTerms(const InstanceEquivalences& other,
                      std::vector<rdf::TermId>* out) const;

 private:
  friend InstanceEquivalences BlendEquivalences(
      const InstanceEquivalences& previous, const InstanceEquivalences& fresh,
      double lambda, double threshold, size_t max_candidates);
  friend void SaveInstanceEquivalences(const InstanceEquivalences& equiv,
                                       storage::SnapshotWriter& writer);
  friend util::StatusOr<InstanceEquivalences> LoadInstanceEquivalences(
      storage::SnapshotReader& reader, size_t pool_size);

  bool finalized_ = false;
  std::unordered_map<rdf::TermId, std::vector<Candidate>> left_to_right_;
  std::unordered_map<rdf::TermId, std::vector<Candidate>> right_to_left_;
  std::unordered_map<rdf::TermId, Candidate> max_left_;
  std::unordered_map<rdf::TermId, Candidate> max_right_;
};

// Dampened fixpoint update (the convergence device §5.1 mentions): returns
// a finalized store whose probabilities are λ·previous + (1-λ)·fresh over
// the union of candidates, dropping blended values below `threshold` and
// keeping at most `max_candidates` per instance.
InstanceEquivalences BlendEquivalences(const InstanceEquivalences& previous,
                                       const InstanceEquivalences& fresh,
                                       double lambda, double threshold,
                                       size_t max_candidates);

}  // namespace paris::core

#endif  // PARIS_CORE_EQUIV_H_
