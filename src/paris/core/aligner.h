#ifndef PARIS_CORE_ALIGNER_H_
#define PARIS_CORE_ALIGNER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "paris/core/class_align.h"
#include "paris/core/config.h"
#include "paris/core/equiv.h"
#include "paris/core/instance_align.h"
#include "paris/core/literal_match.h"
#include "paris/core/pass.h"
#include "paris/core/relation_align.h"
#include "paris/core/relation_scores.h"
#include "paris/core/telemetry.h"
#include "paris/obs/hooks.h"
#include "paris/ontology/ontology.h"
#include "paris/util/thread_pool.h"

namespace paris::core {

// What happened in one fixpoint iteration; the per-iteration experiment
// tables (Tables 3 and 5 of the paper) are printed from these records.
struct IterationRecord {
  int index = 0;  // 1-based
  double seconds_instances = 0.0;
  double seconds_relations = 0.0;
  // Fraction of entities whose maximal assignment changed vs the previous
  // iteration (the "Change to prev." column).
  double change_fraction = 1.0;
  size_t num_left_aligned = 0;
  // What this iteration changed about the maximal assignment, per entity
  // and per shard (always recorded; not serialized in result snapshots).
  ConvergenceTelemetry telemetry;
  // Snapshots (populated when config.record_history).
  std::unordered_map<rdf::TermId, Candidate> max_left;
  std::unordered_map<rdf::TermId, Candidate> max_right;
  RelationScores relations;
};

// A mid-iteration cancellation checkpoint: the work of the interrupted
// iteration that is already done and need not be recomputed on resume. The
// surrounding AlignmentResult stays consistent — its tables reflect the
// last *completed* iteration; this carries the partial one on the side.
//
//  * pass == kInstancePass: `shards`/`payloads` hold the completed instance
//    shards (opaque `InstancePass::SaveShard` payloads).
//  * pass == kRelationPass: the instance pass of the iteration finished —
//    `instances` is its (blended) output — and `shards`/`payloads` hold the
//    completed relation shards.
//
// Resume re-runs the interrupted iteration, feeding the cached shards back
// through `Pass::LoadShard` and computing only the rest; because shard
// outputs are deterministic functions of the previous iteration's state,
// the final tables are byte-identical to an uninterrupted run even when the
// cache is unusable (different `num_shards`, or a payload that fails
// validation — both simply recompute).
struct PartialIterationState {
  int iteration = 0;  // 1-based, the iteration that was interrupted
  int pass = kInstancePass;           // kInstancePass or kRelationPass
  uint32_t num_shards = 0;            // the pass's shard count when saved
  std::vector<uint32_t> shards;       // completed shard ids, ascending
  std::vector<std::string> payloads;  // parallel to `shards`
  InstanceEquivalences instances;     // set when pass == kRelationPass
};

// Wall time spent in one pipeline pass, split by phase and accumulated over
// the run: `shard_seconds` is the parallel section, `prepare_seconds` +
// `merge_seconds` the serial rest (the bench harness reports these so the
// pipeline's parallel fraction stays visible). Not serialized in result
// snapshots.
struct PassTimings {
  std::string pass;
  double prepare_seconds = 0.0;
  double shard_seconds = 0.0;
  double merge_seconds = 0.0;
  size_t shards_run = 0;
};

// The complete output of a PARIS run.
struct AlignmentResult {
  InstanceEquivalences instances;  // final equivalence store
  RelationScores relations;        // final sub-relation scores
  ClassScores classes;             // final sub-class scores (Eq. 17)
  std::vector<IterationRecord> iterations;
  // 1-based iteration at which the convergence criterion fired, or -1 if
  // max_iterations was exhausted first.
  int converged_at = -1;
  double seconds_classes = 0.0;
  double seconds_total = 0.0;
  // Present when the run was cancelled mid-iteration (shard observer
  // returned false inside a pass): the completed work of the interrupted
  // iteration. Serialized in result snapshots; consumed by Resume.
  std::optional<PartialIterationState> partial;
  // Per-pass phase times, in pipeline order (instance, relation, class).
  std::vector<PassTimings> pass_timings;
};

// Warm-start state for an incremental re-alignment after a delta ingest
// (`Aligner::Realign`): a completed run's final tables over the pre-delta
// ontologies, plus the terms each side's delta touched (sorted — e.g. the
// `touched_terms` of `Ontology::ApplyDelta`; pass an empty vector for a
// side that received no delta).
struct RealignSeed {
  InstanceEquivalences instances;
  RelationScores relations;
  std::vector<rdf::TermId> left_touched_terms;
  std::vector<rdf::TermId> right_touched_terms;
};

// The PARIS fixpoint driver (§5.1), scheduling the pass pipeline
// (core/pass.h):
//   1. functionalities are precomputed per ontology (done at build),
//   2. each iteration runs the instance pass (Eq. 13/14, seeded with
//      Pr(r ⊆ r') = θ the first time) and then the relation pass (Eq. 12)
//      over fixed shards, with one shared Prepare → RunShard* → Merge
//      discipline per pass,
//   3. iteration stops when maximal assignments change less than the
//      convergence threshold (default 1 %),
//   4. a final class pass computes class alignments (Eq. 17).
//
// The two ontologies must share one `rdf::TermPool`. The aligner never
// mutates them; `Run()` may be called repeatedly (e.g. with different
// configs) on the same pair.
class Aligner {
 public:
  Aligner(const ontology::Ontology& left, const ontology::Ontology& right,
          AlignmentConfig config = {});

  // Replaces the default identity literal matcher (§5.3). Must be called
  // before Run().
  void set_literal_matcher_factory(LiteralMatcherFactory factory) {
    matcher_factory_ = std::move(factory);
  }

  // Observes the fixpoint from outside (api::Session wires progress
  // reporting and cooperative cancellation through this). Invoked on the
  // run thread after each completed iteration with that iteration's record.
  // Returning false stops the run at this iteration boundary: the class
  // pass still runs over the state so far, so the returned result is
  // internally consistent and — like a run that exhausted max_iterations —
  // resumable from a saved result snapshot. Must be set before Run().
  using IterationObserver = std::function<bool(const IterationRecord&)>;
  void set_iteration_observer(IterationObserver observer) {
    iteration_observer_ = std::move(observer);
  }

  // Observes the pipeline at shard granularity: invoked after every
  // completed shard of every pass — serialized, but possibly on a worker
  // thread, so the callback must be cheap and thread-safe. Returning false
  // cancels mid-iteration: the instance/relation pass stops claiming
  // shards, the completed ones are recorded as a PartialIterationState, and
  // the run wraps up with a consistent, resumable result whose Resume
  // reproduces the uninterrupted run byte-identically. During the final
  // class pass the return value is ignored (the pass always completes to
  // keep the result consistent). Must be set before Run().
  using ShardObserver = std::function<bool(const ShardProgress&)>;
  void set_shard_observer(ShardObserver observer) {
    shard_observer_ = std::move(observer);
  }

  // Uses `pool` (non-owning, may be null) for the parallel passes instead
  // of constructing a pool from `config.num_threads` per Run(). Lets a
  // caller that already owns a worker pool (api::Session) share it across
  // index finalization and repeated runs.
  void set_thread_pool(util::ThreadPool* pool) { external_pool_ = pool; }

  // Names the literal matcher for the periodic background checkpoints
  // (config().checkpoint_dir / checkpoint_interval): the name goes into
  // each checkpoint's compatibility key exactly as in SaveAlignmentResult.
  // Callers that install a non-default matcher factory and enable
  // checkpointing must set the matching registry name before Run().
  void set_matcher_name(std::string name) { matcher_name_ = std::move(name); }

  // Attaches tracing/metrics recorders (src/obs/) for the run. Both
  // pointers are optional and non-owning; when set they must be sized for
  // the worker pool the run uses (max(1, threads) worker slots) and stay
  // alive until Run/Resume returns. Spans cover the run, each iteration,
  // each pass (with prepare/shards/merge sub-phases), and every computed
  // shard; metrics stay deterministic across thread and shard counts.
  // Enabling observability never changes the alignment output. Must be set
  // before Run().
  void set_observability(obs::Hooks hooks) { obs_ = hooks; }

  const AlignmentConfig& config() const { return config_; }

  AlignmentResult Run();

  // Continues a run from `checkpoint` — an AlignmentResult saved after k
  // completed iterations (see src/core/result_snapshot.h), plus possibly a
  // partially completed iteration k+1 (mid-iteration cancel). Iterations
  // resume at k+1 with the checkpoint's equivalences and relation scores as
  // the previous-iteration state — cached shards of a partial iteration are
  // adopted instead of recomputed — so the final tables are identical to an
  // uninterrupted run with the same config (num_threads, num_shards, and
  // max_iterations may differ). A checkpoint that already converged (or
  // exhausted max_iterations) skips the fixpoint loop and recomputes only
  // the class alignment. The checkpoint's scalar iteration records are
  // carried over; their per-iteration history snapshots are not (result
  // snapshots do not store them).
  AlignmentResult Resume(AlignmentResult checkpoint);

  // Incremental re-alignment after a delta ingest: runs the fixpoint over
  // the (post-delta) ontologies warm-started from `seed` — the completed
  // base run's tables become the previous-iteration state, the first
  // instance pass recomputes only the delta's structural cone (the touched
  // terms, their fact neighbors, and the left instances whose expansions
  // reach a touched right term; see SemiNaiveTracker), and clean entities
  // keep their seeded alignment. Unlike Resume, convergence may fire at
  // iteration 1 (the seed is already near the fixpoint). The result is a
  // fixpoint of the post-delta pair, not a bit-replay of a cold run over
  // base+delta: global functionalities drifted by the delta re-weight the
  // evidence of *every* entity in a cold run, while the warm start
  // deliberately keeps entities outside the cone untouched (that drift is
  // second-order in the delta size). With `config().semi_naive` off this
  // degenerates to a warm-started exhaustive run (same tables, every
  // entity recomputed). The first relation pass is always exhaustive — the
  // delta changed the stores themselves, which the view-diff worklist
  // cannot see; later iterations reuse as usual.
  AlignmentResult Realign(RealignSeed seed);

 private:
  AlignmentResult RunInternal(AlignmentResult* checkpoint,
                              RealignSeed* seed = nullptr);

  const ontology::Ontology& left_;
  const ontology::Ontology& right_;
  AlignmentConfig config_;
  LiteralMatcherFactory matcher_factory_;
  std::string matcher_name_ = "identity";
  IterationObserver iteration_observer_;
  ShardObserver shard_observer_;
  util::ThreadPool* external_pool_ = nullptr;
  obs::Hooks obs_;
};

}  // namespace paris::core

#endif  // PARIS_CORE_ALIGNER_H_
