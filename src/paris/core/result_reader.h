#ifndef PARIS_CORE_RESULT_READER_H_
#define PARIS_CORE_RESULT_READER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "paris/core/relation_scores.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/storage/column.h"
#include "paris/storage/snapshot.h"
#include "paris/util/status.h"

namespace paris::core {

// Read-only, query-oriented view of a result snapshot file — the serving
// counterpart of LoadAlignmentResult. Where the loader materializes an
// AlignmentResult (hash maps, owned vectors) for resuming the fixpoint,
// this reader keeps the file's sorted columns as-is and answers point
// lookups with binary searches over them. In mmap mode (the default via
// kAuto) the equivalence/score columns alias the mapping — loading costs
// one checksum pass and O(small) owned indexes, N readers of the same file
// share one page cache, and no query allocates from the columns.
//
// Unlike the loader, opening needs no ontologies or config: the run-key
// section is carried as opaque metadata (fingerprint + matcher) for the
// caller to match against its own pair if it wants coherent term ids.
// Structural validation still happens (checksum, section shapes, sorted
// keys); a file that fails it is rejected with kDataLoss exactly like the
// loader would.
//
// Thread-safety: const lookups are safe from any number of threads.
class ResultReader {
 public:
  // One candidate counterpart with its equivalence probability / score.
  struct EntityMatch {
    rdf::TermId other = rdf::kNullTerm;
    double prob = 0.0;
  };
  struct RelationMatch {
    rdf::RelId super = rdf::kNullRel;
    double score = 0.0;
  };
  struct ClassMatch {
    rdf::TermId super = rdf::kNullTerm;
    double score = 0.0;
  };

  // Run metadata for STATUS/RESULT-style reporting.
  struct Stats {
    uint64_t pair_fingerprint = 0;
    std::string matcher;
    size_t num_iterations = 0;
    int converged_at = -1;
    double seconds_total = 0.0;
    uint64_t num_left_aligned = 0;   // of the last completed iteration
    size_t num_instance_keys = 0;    // left entities with >= 1 candidate
    size_t num_instance_pairs = 0;   // total stored candidates
    size_t num_relation_entries = 0;  // both directions
    size_t num_class_entries = 0;    // both directions
    bool relation_bootstrap = false;
    double theta = 0.0;
    bool has_partial = false;  // mid-iteration checkpoint, not a final result
  };

  // Opens `path`, verifying checksum and structure. kAuto maps when
  // possible; kStream copies the columns into owned memory (same queries,
  // no page-cache sharing).
  static util::StatusOr<ResultReader> Open(
      const std::string& path,
      storage::SnapshotLoadMode mode = storage::SnapshotLoadMode::kAuto);

  ResultReader(ResultReader&&) noexcept = default;
  ResultReader& operator=(ResultReader&&) noexcept = default;

  const Stats& stats() const { return stats_; }

  // Candidates for a left-ontology entity, sorted by descending prob (ties
  // ascending id) — the first element is the maximal assignment. Empty when
  // the entity has no stored candidate. Zero-copy: parallel spans into the
  // candidate columns.
  struct EntityCandidates {
    std::span<const rdf::TermId> others;
    std::span<const double> probs;
    size_t size() const { return others.size(); }
    bool empty() const { return others.empty(); }
  };
  EntityCandidates LeftEntity(rdf::TermId left) const;

  // Counterparts of a right-ontology entity, best first. Served from a
  // small owned transpose index (the file only stores left-to-right).
  std::vector<EntityMatch> RightEntity(rdf::TermId right) const;

  // Stored super-relations of `sub` (signed ids allowed; canonicalized via
  // Pr(r subOf r') = Pr(r-1 subOf r'-1)), sorted by descending score. When
  // the table is in bootstrap state every unstored pair also scores
  // theta (stats().theta); only stored priors are returned here.
  std::vector<RelationMatch> RelationSupers(rdf::RelId sub,
                                            bool sub_is_left) const;

  // Stored super-classes of `sub`, sorted by descending score.
  std::vector<ClassMatch> ClassSupers(rdf::TermId sub, bool sub_is_left) const;

 private:
  ResultReader() = default;

  util::Status LoadSections(storage::SnapshotReader& reader);
  void BuildIndexes();

  // Instance equivalences: CSR over sorted left keys.
  storage::Column<rdf::TermId> inst_keys_;
  storage::Column<uint64_t> inst_offsets_;
  storage::Column<rdf::TermId> inst_others_;
  storage::Column<double> inst_probs_;

  // Relation scores: sorted PackPair(Encode(sub), Encode(super)) keys.
  storage::Column<uint64_t> rel_left_keys_;
  storage::Column<double> rel_left_values_;
  storage::Column<uint64_t> rel_right_keys_;
  storage::Column<double> rel_right_values_;

  // Class scores: parallel entry columns (not globally sorted in-file).
  storage::Column<rdf::TermId> class_subs_;
  storage::Column<rdf::TermId> class_supers_;
  storage::Column<double> class_values_;
  storage::Column<uint8_t> class_sides_;

  // Owned indexes built at open: the right-to-left transpose, sorted by
  // (right, desc prob, left); and class entry positions sorted by
  // (side, sub, desc score, super).
  struct TransposeEntry {
    rdf::TermId right;
    rdf::TermId left;
    double prob;
  };
  std::vector<TransposeEntry> right_index_;
  std::vector<uint32_t> class_index_;

  Stats stats_;
  // Pins the mmap'ed file for the life of the column views.
  std::shared_ptr<const void> mapping_;
};

}  // namespace paris::core

#endif  // PARIS_CORE_RESULT_READER_H_
