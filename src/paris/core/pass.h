#ifndef PARIS_CORE_PASS_H_
#define PARIS_CORE_PASS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "paris/core/class_scores.h"
#include "paris/core/config.h"
#include "paris/core/direction.h"
#include "paris/core/equiv.h"
#include "paris/core/literal_match.h"
#include "paris/core/relation_scores.h"
#include "paris/obs/hooks.h"
#include "paris/ontology/ontology.h"
#include "paris/util/thread_pool.h"

namespace paris::core {

struct SemiNaiveWorklist;  // core/worklist.h

// ---------------------------------------------------------------------------
// Shard layout
// ---------------------------------------------------------------------------

// Default shard count per pass when `AlignmentConfig::num_shards` is 0.
// Fixed — never derived from the thread count — so shard boundaries (and
// therefore mid-iteration checkpoints) are identical across machines.
inline constexpr size_t kDefaultNumShards = 64;

// Fixed partition of [0, total) items into contiguous shards. Boundaries
// depend only on `total` and the configured shard count — never on the
// thread count or on claim order — so a checkpoint's completed-shard
// payloads remain valid when the run resumes on different hardware.
struct ShardLayout {
  size_t total = 0;
  size_t num_shards = 0;
  size_t chunk = 0;  // items per shard (last shard may be short)

  static ShardLayout Make(size_t total, size_t configured_shards) {
    ShardLayout layout;
    layout.total = total;
    if (total == 0) return layout;
    const size_t wanted =
        configured_shards > 0 ? configured_shards : kDefaultNumShards;
    const size_t shards = std::min(wanted, total);
    layout.chunk = (total + shards - 1) / shards;
    layout.num_shards = (total + layout.chunk - 1) / layout.chunk;
    return layout;
  }

  size_t begin(size_t shard) const { return shard * chunk; }
  size_t end(size_t shard) const {
    return std::min(begin(shard) + chunk, total);
  }
};

// ---------------------------------------------------------------------------
// Iteration context
// ---------------------------------------------------------------------------

// The mutable state of one fixpoint iteration, threaded through every pass:
// the run-wide inputs, the iteration's input/output tables, and the
// per-worker scratch pool. Owning this state here (instead of in locals of
// the pass free functions, as before the pipeline refactor) is what lets
// scratch memory be reused across shards and iterations instead of
// reallocated, and gives every pass one place to read its inputs from.
//
// Thread-safety protocol: the Aligner mutates the context only between
// passes (single-threaded); during a pass, workers touch only their own
// scratch slot and their pass's shard-local output. `ScratchSlots<T>()`
// may allocate and must therefore only be called from the serial phases
// (`Pass::Prepare` / `Pass::Merge`); `RunShard` indexes into the vector it
// obtained during `Prepare`.
class IterationContext {
 public:
  explicit IterationContext(size_t worker_slots)
      : worker_slots_(worker_slots == 0 ? 1 : worker_slots) {}

  IterationContext(const IterationContext&) = delete;
  IterationContext& operator=(const IterationContext&) = delete;

  // --- Run-wide inputs, bound once per run by the Aligner -----------------
  const ontology::Ontology* left = nullptr;
  const ontology::Ontology* right = nullptr;
  const AlignmentConfig* config = nullptr;
  const LiteralMatcher* matcher_l2r = nullptr;
  const LiteralMatcher* matcher_r2l = nullptr;
  // Observability hooks (default: off). Passes may register metrics in
  // their serial phases and update them per shard with the worker slot;
  // the scheduler records one "shard" span per computed shard. Both
  // recorders, when set, are sized for this context's worker slots.
  obs::Hooks obs;

  // --- Fixpoint state, rebound by the Aligner every iteration -------------
  int iteration = 0;                               // 1-based
  const InstanceEquivalences* previous = nullptr;  // last iteration's output
  const RelationScores* rel_scores = nullptr;      // input scores (Eq. 13)
  // Semi-naive dirty sets for this iteration (core/worklist.h); null or
  // inactive = recompute everything. Passes consult it inside RunShard, so
  // shard scheduling, checkpointing, and merge order are identical whether
  // or not items are skipped.
  const SemiNaiveWorklist* worklist = nullptr;
  InstanceEquivalences current;                    // instance pass output
  RelationScores fresh_scores;                     // relation pass output
  ClassScores classes;                             // class pass output

  // The directional view every pass builds its expansions from (§5.2).
  DirectionalContext Direction(bool left_to_right,
                               const InstanceEquivalences* equiv) const {
    DirectionalContext ctx;
    ctx.source = left_to_right ? left : right;
    ctx.target = left_to_right ? right : left;
    ctx.matcher = left_to_right ? matcher_l2r : matcher_r2l;
    ctx.equiv = equiv;
    ctx.source_is_left = left_to_right;
    ctx.use_full = config->use_full_equalities;
    return ctx;
  }

  // --- Per-worker scratch --------------------------------------------------

  size_t worker_slots() const { return worker_slots_; }

  // One default-constructed T per worker slot, created on first request and
  // kept for the lifetime of the context — scratch buffers grown during one
  // shard keep their capacity for the next shard and the next iteration.
  // Serial phases only (may allocate); see the class comment.
  template <typename T>
  std::vector<T>& ScratchSlots() {
    auto& holder = scratch_[std::type_index(typeid(T))];
    if (holder == nullptr) {
      auto typed = std::make_unique<ScratchHolder<T>>();
      typed->slots.resize(worker_slots_);
      holder = std::move(typed);
    }
    return static_cast<ScratchHolder<T>*>(holder.get())->slots;
  }

 private:
  struct ScratchBase {
    virtual ~ScratchBase() = default;
  };
  template <typename T>
  struct ScratchHolder final : ScratchBase {
    std::vector<T> slots;
  };

  size_t worker_slots_;
  std::unordered_map<std::type_index, std::unique_ptr<ScratchBase>> scratch_;
};

// ---------------------------------------------------------------------------
// Pass interface
// ---------------------------------------------------------------------------

// One stage of the alignment pipeline (instance equivalences, relation
// scores, class scores), decomposed into fixed shards so the scheduler can
// poll cancellation and report progress at shard granularity.
//
// Protocol, driven by the Aligner once per iteration:
//
//   1. `Prepare(ctx)` (serial): bind inputs from `ctx`, size the shard-local
//      output slots, return the shard count (a `ShardLayout` over the pass's
//      item space).
//   2. `RunShard(shard, worker, ctx)` (parallel): compute one shard into its
//      own output slot, using only `ctx` inputs and the worker's scratch.
//      Shards are independent; no locks.
//   3. `Merge(ctx)` (serial): fold the shard outputs into the context in
//      ascending shard order — the shared merge discipline that makes every
//      pass reproduce the exact insertion sequence of a serial run, so
//      results are byte-identical across shard and thread counts.
//
// `SaveShard`/`LoadShard` serialize one computed shard's output as an opaque
// payload for mid-iteration checkpoints: a cancelled pass records its
// completed shards in the result snapshot, and a resumed run re-loads them
// instead of recomputing. A payload that fails `LoadShard` validation is
// simply discarded (the shard recomputes), so stale or foreign payloads can
// never corrupt a run. The defaults are for passes that are never
// checkpointed (the class pass always runs to completion): save nothing,
// accept nothing.
class Pass {
 public:
  virtual ~Pass() = default;

  virtual const char* name() const = 0;
  virtual size_t Prepare(IterationContext& ctx) = 0;
  virtual void RunShard(size_t shard, size_t worker, IterationContext& ctx) = 0;
  virtual void Merge(IterationContext& ctx) = 0;
  virtual void SaveShard(size_t shard, std::string* out) const {
    (void)shard;
    out->clear();
  }
  virtual bool LoadShard(size_t shard, std::string_view bytes,
                         IterationContext& ctx) {
    (void)shard;
    (void)bytes;
    (void)ctx;
    return false;
  }
};

// Indexes of the pipeline's passes, in execution order; recorded in
// checkpoints to name the interrupted pass.
enum PassIndex : int {
  kInstancePass = 0,
  kRelationPass = 1,
  kClassPass = 2,
};

// ---------------------------------------------------------------------------
// Shard payload codec
// ---------------------------------------------------------------------------

// Minimal little-endian byte codec for shard payloads. Payloads are opaque
// to everything but the pass that wrote them; file-level corruption is
// caught by the snapshot checksum, and `LoadShard` re-validates structure
// so any surviving mismatch falls back to recomputation.
class PayloadWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Shard scheduler
// ---------------------------------------------------------------------------

// One shard-completion event, reported through the Aligner's shard observer.
struct ShardProgress {
  const char* pass = "";     // Pass::name() of the reporting pass
  int iteration = 0;         // 1-based fixpoint iteration; for the final
                             // class pass, the last completed iteration
  size_t shard = 0;          // shard that just completed
  size_t num_shards = 0;     // total shards of this pass this iteration
  size_t num_completed = 0;  // completed so far, including cached ones
};

// What `RunPassShards` did: which shards completed (computed this run or
// adopted from a checkpoint) and whether the gate stopped the pass early.
struct ShardRunOutcome {
  std::vector<uint8_t> completed;  // 1 per completed shard
  size_t num_completed = 0;
  bool stopped = false;  // the gate returned false at some shard boundary

  bool all_completed() const { return num_completed == completed.size(); }
};

// Runs `pass` over `num_shards` shards across `pool` (inline when null or
// empty), claiming shards one at a time. Shards flagged in `already_done`
// (from a checkpoint; may be null) are skipped and counted as completed.
// After each computed shard, `gate` (may be null) is invoked — serialized
// under an internal mutex, but possibly on a worker thread — and returning
// false stops further claims: shards already running finish, everything
// else stays incomplete. The outcome records exactly which shards
// completed, which is what a mid-iteration checkpoint persists.
ShardRunOutcome RunPassShards(
    Pass& pass, size_t num_shards, IterationContext& ctx,
    util::ThreadPool* pool,
    const std::function<bool(const ShardProgress&)>& gate,
    const std::vector<uint8_t>* already_done = nullptr);

}  // namespace paris::core

#endif  // PARIS_CORE_PASS_H_
