#ifndef PARIS_CORE_RELATION_SCORES_H_
#define PARIS_CORE_RELATION_SCORES_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "paris/rdf/triple.h"
#include "paris/util/hash.h"
#include "paris/util/status.h"

namespace paris::storage {
class SnapshotReader;
class SnapshotWriter;
}  // namespace paris::storage

namespace paris::core {

class RelationScores;

// Result-snapshot section I/O (src/core/result_snapshot.h); friends of
// RelationScores.
void SaveRelationScores(const RelationScores& scores,
                        storage::SnapshotWriter& writer);
util::StatusOr<RelationScores> LoadRelationScores(
    storage::SnapshotReader& reader, size_t num_left_relations,
    size_t num_right_relations);

// One reportable sub-relation alignment.
struct RelationAlignmentEntry {
  rdf::RelId sub = rdf::kNullRel;    // relation of the "sub" side
  rdf::RelId super = rdf::kNullRel;  // relation of the "super" side
  double score = 0.0;
  // True if `sub` belongs to the left ontology (sub ⊆ super reads
  // left-relation ⊆ right-relation), false for the other direction.
  bool sub_is_left = true;
};

// Sparse table of sub-relation probabilities Pr(r ⊆ r') between the signed
// relations of a left and a right ontology.
//
// Exploits the identity Pr(r ⊆ r') = Pr(r⁻¹ ⊆ r'⁻¹): entries are stored
// canonicalized to a positive sub-relation id, so one stored score serves
// both the relation pair and its inverted twin.
//
// In the very first iteration no scores exist yet; a table constructed with
// `Bootstrap(theta)` reports θ for every pair (§5.1).
class RelationScores {
 public:
  RelationScores() = default;

  static RelationScores Bootstrap(double theta) {
    RelationScores s;
    s.bootstrap_ = true;
    s.theta_ = theta;
    return s;
  }

  bool bootstrap() const { return bootstrap_; }

  // In bootstrap mode, lookups for a pair with a stored prior return
  // max(θ, prior) instead of θ. Used by the relation-name-prior extension;
  // the stored value must be set through SetBootstrapPrior.
  void SetBootstrapPrior(rdf::RelId left, rdf::RelId right, double prior);

  // Pr(left ⊆ right) for a left-ontology relation `left` and right-ontology
  // relation `right` (either may be inverse ids).
  double SubLeftRight(rdf::RelId left, rdf::RelId right) const {
    return Lookup(left_sub_right_, left, right);
  }

  // Pr(right ⊆ left).
  double SubRightLeft(rdf::RelId right, rdf::RelId left) const {
    return Lookup(right_sub_left_, right, left);
  }

  // Setters expect a canonical (positive) sub id; assertion-checked.
  void SetSubLeftRight(rdf::RelId left, rdf::RelId right, double score);
  void SetSubRightLeft(rdf::RelId right, rdf::RelId left, double score);

  // Everything stored, for reporting and the negative-evidence pass.
  // Includes both directions, in canonical (sub_is_left, sub, super) order —
  // never hash-map iteration order — so consumers that tie-break or
  // accumulate while scanning behave identically whether the table was
  // computed in-process or restored from a result snapshot. The vector is
  // materialized on first call and cached (setters invalidate), so
  // per-iteration consumers like the negative-evidence counterpart table
  // built in `InstancePass::Prepare` stop rebuilding it from scratch. Not
  // synchronized: first call must not race with other accessors.
  const std::vector<RelationAlignmentEntry>& Entries() const;

  size_t size() const {
    return left_sub_right_.size() + right_sub_left_.size();
  }

  // ZigZag so signed relation ids pack into 32 bits. Public because the
  // result-snapshot columns store PackPair(Encode(sub), Encode(super)) keys
  // and zero-copy readers (core::ResultReader) range-scan them in place.
  static uint32_t Encode(rdf::RelId r) {
    return r < 0 ? static_cast<uint32_t>(-r) * 2 - 1
                 : static_cast<uint32_t>(r) * 2;
  }
  static rdf::RelId Decode(uint32_t v) {
    return (v & 1) != 0 ? -static_cast<rdf::RelId>((v + 1) / 2)
                        : static_cast<rdf::RelId>(v / 2);
  }

  // Appends to `out` the positive base id of every left-ontology relation
  // that participates in an entry (in either table, either argument
  // position) whose score differs between `*this` and `other` — added,
  // dropped, or moved, by exact double comparison. An instance pass consults
  // exactly the entries whose left-side relation is one of the instance's
  // own fact relations, so these base ids drive the semi-naive instance
  // worklist. Requires both tables non-bootstrap (a bootstrap table has no
  // comparable entry set). `out` is sorted ascending and deduplicated on
  // return.
  void DiffLeftRelations(const RelationScores& other,
                         std::vector<rdf::RelId>* out) const;

 private:
  friend void SaveRelationScores(const RelationScores& scores,
                                 storage::SnapshotWriter& writer);
  friend util::StatusOr<RelationScores> LoadRelationScores(
      storage::SnapshotReader& reader, size_t num_left_relations,
      size_t num_right_relations);

  using Table = std::unordered_map<uint64_t, double, util::PackedPairHash>;

  double Lookup(const Table& table, rdf::RelId sub, rdf::RelId super) const {
    // Canonicalize: Pr(r ⊆ r') = Pr(r⁻¹ ⊆ r'⁻¹).
    if (sub < 0) {
      sub = -sub;
      super = -super;
    }
    auto it = table.find(util::PackPair(Encode(sub), Encode(super)));
    if (bootstrap_) {
      return it == table.end() ? theta_ : std::max(theta_, it->second);
    }
    return it == table.end() ? 0.0 : it->second;
  }

  bool bootstrap_ = false;
  double theta_ = 0.0;
  Table left_sub_right_;
  Table right_sub_left_;

  // Lazily-built Entries() cache; rebuilt after any setter call.
  mutable std::vector<RelationAlignmentEntry> entries_cache_;
  mutable bool entries_cache_valid_ = false;
};

}  // namespace paris::core

#endif  // PARIS_CORE_RELATION_SCORES_H_
