#ifndef PARIS_CORE_RESULT_IO_H_
#define PARIS_CORE_RESULT_IO_H_

#include <iosfwd>
#include <string>

#include "paris/core/aligner.h"
#include "paris/ontology/ontology.h"
#include "paris/util/status.h"

namespace paris::core {

// Serialization of alignment results as tab-separated values, one record
// per line:
//   instances:  <left-iri> TAB <right-iri> TAB <probability>
//   relations:  <sub-name> TAB <super-name> TAB <score> TAB <L|R>
//               (sub relations may carry the ^-1 inverse marker;
//                L = sub belongs to the left ontology)
//   classes:    <sub-iri> TAB <super-iri> TAB <score> TAB <L|R>
// Lines starting with '#' are comments. The format is deliberately trivial
// so downstream tools (join, awk, pandas) can consume it directly.

// Writes the maximal instance assignment (best counterpart per left
// instance).
void WriteInstanceAlignment(const InstanceEquivalences& equiv,
                            const ontology::Ontology& left,
                            const ontology::Ontology& right,
                            std::ostream& out);

// Writes every stored sub-relation score.
void WriteRelationAlignment(const RelationScores& scores,
                            const ontology::Ontology& left,
                            const ontology::Ontology& right,
                            std::ostream& out);

// Writes every stored sub-class score.
void WriteClassAlignment(const ClassScores& scores,
                         const ontology::Ontology& left,
                         const ontology::Ontology& right, std::ostream& out);

// Writes all three sections to `<prefix>_instances.tsv`,
// `<prefix>_relations.tsv`, `<prefix>_classes.tsv`.
util::Status WriteAlignmentFiles(const AlignmentResult& result,
                                 const ontology::Ontology& left,
                                 const ontology::Ontology& right,
                                 const std::string& prefix);

// Reads an instance alignment back (IRIs resolved through `pool`;
// unknown IRIs are reported as an error). The returned store is finalized.
util::StatusOr<InstanceEquivalences> ReadInstanceAlignment(
    std::istream& in, const rdf::TermPool& pool);

// Writes the maximal instance assignment in the OAEI Alignment Format
// (the RDF/XML interchange format of the Ontology Alignment Evaluation
// Initiative, which the paper benchmarks against in §6.2): one <Cell> per
// pair with entity1/entity2/measure/relation elements.
void WriteOaeiAlignment(const InstanceEquivalences& equiv,
                        const ontology::Ontology& left,
                        const ontology::Ontology& right, std::ostream& out);

}  // namespace paris::core

#endif  // PARIS_CORE_RESULT_IO_H_
