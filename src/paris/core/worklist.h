#ifndef PARIS_CORE_WORKLIST_H_
#define PARIS_CORE_WORKLIST_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "paris/core/equiv.h"
#include "paris/core/literal_match.h"
#include "paris/core/relation_scores.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"

namespace paris::core {

// The semi-naive dirty sets of one fixpoint iteration: which left instances
// the instance pass must recompute and which relations the relation pass
// must re-score; everything else reuses its retained output from the
// previous *same-parity* iteration (two back — see SemiNaiveTracker). An
// inactive flag means "recompute everything" (the exhaustive baseline). The
// sets are dense bitmaps over the passes' item spaces — instance index i of
// `Ontology::instances()`, base relation id r at slot r-1 — so skipping
// never perturbs item order: a semi-naive run visits the same shards,
// merges in the same ascending order, and (because a slot is reused only
// when every one of its inputs is bit-identical to the iteration whose
// output it reuses) produces output byte-identical to the exhaustive run.
struct SemiNaiveWorklist {
  bool instances_active = false;
  std::vector<uint8_t> dirty_instances;  // by left-instance position
  size_t num_dirty_instances = 0;

  bool relations_active = false;
  std::vector<uint8_t> dirty_left_rels;   // by base rel id - 1 (left)
  std::vector<uint8_t> dirty_right_rels;  // by base rel id - 1 (right)
  size_t num_dirty_relations = 0;

  void Reset() { *this = SemiNaiveWorklist{}; }

  bool InstanceDirty(size_t index) const {
    return !instances_active || dirty_instances[index] != 0;
  }
  bool LeftRelDirty(rdf::RelId base) const {
    return !relations_active ||
           dirty_left_rels[static_cast<size_t>(base) - 1] != 0;
  }
  bool RightRelDirty(rdf::RelId base) const {
    return !relations_active ||
           dirty_right_rels[static_cast<size_t>(base) - 1] != 0;
  }
};

// Builds the worklists by diffing *same-parity* fixpoint states — iteration
// k against iteration k-2, not k-1. In floating point the attractor of the
// fixpoint is an exact cycle of period 1 or 2 (the maximal-assignment
// oscillation of §5.2 survives in the low mantissa bits long after the
// assignments themselves stabilize), and a consecutive-state diff never
// goes empty against a 2-cycle: comparing two-back drains the worklist on
// both attractor shapes. The passes retain their outputs in two alternating
// generations to match (see InstancePass). Owned by the Aligner; every
// method runs in the serial phase between passes.
//
// The dirty criteria mirror exactly what each pass reads:
//  * An instance pass slot for left instance x depends on x's own packed
//    statements, the equivalence views of x's fact neighbors (through
//    `DirectionalContext::AppendEquivalents`), the target's packed
//    statements, and the score entries whose left-side relation is one of
//    x's fact relations. Within a run the stores are immutable, so x is
//    dirty iff a neighbor's view moved or an incident relation re-scored.
//  * A relation pass item for relation r depends on r's (static) pair
//    sample and the views of the pair components, so r is dirty iff a term
//    with a statement of r moved its view.
// Both criteria over-approximate (a moved neighbor might not change the
// final candidate list), which costs recomputation but never correctness.
class SemiNaiveTracker {
 public:
  SemiNaiveTracker(const ontology::Ontology& left,
                   const ontology::Ontology& right);

  // Forgets all observed diffs (start of a run or resume; worklists seeded
  // from a forgotten state must not survive).
  void Reset();

  // Records which terms' candidate lists differ between the equivalence
  // stores of same-parity iterations (`before` = two iterations back). Both
  // must be finalized.
  void ObserveInstances(const InstanceEquivalences& before,
                        const InstanceEquivalences& after);

  // Records which left base relations' score entries differ between
  // same-parity score tables. A bootstrap table is incomparable: the next
  // SeedInstanceWorklist stays inactive (exhaustive).
  void ObserveScores(const RelationScores& before, const RelationScores& after);

  // True iff two *consecutive* states are bit-identical — the run sits on
  // an exact period-1 fixpoint, so every later iteration reproduces this
  // state byte-for-byte and the fixpoint loop may stop early without
  // changing the final output. False when either score table is a
  // θ-bootstrap (incomparable). A period-2 lock never satisfies this:
  // stopping there would drop the dependence of the exhaustive output on
  // the parity of the iteration cap.
  bool ExactFixpoint(const InstanceEquivalences& prev,
                     const InstanceEquivalences& current,
                     const RelationScores& prev_scores,
                     const RelationScores& current_scores) const;

  // Fills the relation-pass dirty sets of the *current* iteration from the
  // last ObserveInstances. Inactive if no instance diff was observed.
  void SeedRelationWorklist(SemiNaiveWorklist* wl) const;

  // Fills the instance-pass dirty set of the *next* iteration from the last
  // ObserveInstances + ObserveScores. Inactive unless both were observed.
  void SeedInstanceWorklist(SemiNaiveWorklist* wl) const;

  // Fills the first-iteration instance dirty set of an incremental
  // re-alignment from a delta's structural cone: every marked left term and
  // its fact neighbors (their packed statements changed), plus — for each
  // touched right term — the left instances whose expansions reach it (its
  // known counterparts under `base` and, for literals, the left literals
  // `matcher_r2l` maps to it) and their fact neighbors. Global-functionality
  // drift from the delta is deliberately *not* part of the cone: it is
  // second-order in the delta size, and chasing it would mark every member
  // of every touched relation (for a uniform delta, the whole ontology).
  // A seeded re-alignment therefore warm-starts the fixpoint rather than
  // replaying the cold run bit-for-bit; see Aligner::Realign.
  void SeedRealignInstanceWorklist(const InstanceEquivalences& base,
                                   const LiteralMatcher* matcher_r2l,
                                   std::span<const rdf::TermId> left_touched,
                                   std::span<const rdf::TermId> right_touched,
                                   SemiNaiveWorklist* wl) const;

  size_t num_changed_left_terms() const { return changed_left_.size(); }
  size_t num_changed_right_terms() const { return changed_right_.size(); }
  size_t num_changed_relations() const { return changed_left_rels_.size(); }

 private:
  void MarkInstance(rdf::TermId t, SemiNaiveWorklist* wl) const;
  // Marks t and every left instance adjacent to one of t's statements.
  void MarkInstanceAndNeighbors(rdf::TermId t, SemiNaiveWorklist* wl) const;

  const ontology::Ontology& left_;
  const ontology::Ontology& right_;
  // Left instance term → position in left.instances() (the pass item space).
  std::unordered_map<rdf::TermId, uint32_t> instance_index_;

  bool have_instance_diff_ = false;
  bool have_score_diff_ = false;
  std::vector<rdf::TermId> changed_left_;
  std::vector<rdf::TermId> changed_right_;
  std::vector<rdf::RelId> changed_left_rels_;  // positive base ids
};

}  // namespace paris::core

#endif  // PARIS_CORE_WORKLIST_H_
