#include "paris/core/telemetry.h"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace paris::core {

ConvergenceTelemetry ComputeConvergenceTelemetry(
    const std::vector<rdf::TermId>& left_instances, const ShardLayout& layout,
    const InstanceEquivalences& previous,
    const InstanceEquivalences& current) {
  ConvergenceTelemetry telemetry;
  telemetry.score_delta_counts.assign(kScoreDeltaBuckets, 0);
  telemetry.shard_changed.assign(layout.num_shards, 0);
  const auto* bounds_begin = std::begin(kScoreDeltaBounds);
  const auto* bounds_end = std::end(kScoreDeltaBounds);
  for (size_t i = 0; i < left_instances.size(); ++i) {
    const rdf::TermId x = left_instances[i];
    const Candidate* prev = previous.MaxOfLeft(x);
    const Candidate* cur = current.MaxOfLeft(x);
    if (prev == nullptr && cur == nullptr) continue;
    bool moved = true;
    if (prev == nullptr) {
      ++telemetry.gained;
    } else if (cur == nullptr) {
      ++telemetry.dropped;
    } else {
      if (prev->other == cur->other) {
        ++telemetry.stable;
        moved = false;
      } else {
        ++telemetry.changed;
      }
      const double delta = std::fabs(cur->prob - prev->prob);
      const size_t bucket =
          std::lower_bound(bounds_begin, bounds_end, delta) - bounds_begin;
      ++telemetry.score_delta_counts[bucket];
    }
    if (moved && layout.chunk > 0) {
      const size_t shard = std::min(i / layout.chunk, layout.num_shards - 1);
      ++telemetry.shard_changed[shard];
    }
  }
  return telemetry;
}

}  // namespace paris::core
