#ifndef PARIS_CORE_RELATION_ALIGN_H_
#define PARIS_CORE_RELATION_ALIGN_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "paris/core/config.h"
#include "paris/core/direction.h"
#include "paris/core/pass.h"
#include "paris/core/relation_scores.h"
#include "paris/ontology/ontology.h"

namespace paris::core {

// Per-worker scratch of the relation pass (defined in relation_align.cc),
// owned by the IterationContext and bound to `scratch_` in Prepare — the
// serial phase, per the ScratchSlots contract.
struct RelationShardScratch;

// The sub-relation pass (§4.2, Eq. (12)), one pipeline stage per fixpoint
// iteration: for every relation r of each ontology, estimates Pr(r ⊆ r')
// against every relation r' of the other ontology as
//
//     Σ_{r(x,y)} [1 - ∏_{r'(x',y'), x≈x', y≈y'} (1 - Pr(x≡x')·Pr(y≡y'))]
//     ------------------------------------------------------------------
//     Σ_{r(x,y)} [1 - ∏_{x', y'} (1 - Pr(x≡x')·Pr(y≡y'))]
//
// Only the pairs of the current maximal assignment feed the estimate
// (§5.2), at most `config.relation_pair_sample` pairs per relation.
// Inverse relations are covered by the Pr(r ⊆ r') = Pr(r⁻¹ ⊆ r'⁻¹)
// canonicalization in `RelationScores`.
//
// Input (bound in Prepare): `ctx.current`, the equivalences the instance
// pass of the same iteration just produced. The item space is the
// (direction, relation) sequence — left relations first, then right — and
// shards partition it; every item writes only its own score list, so the
// pass parallelizes without locks. Merge inserts the item lists into
// `ctx.fresh_scores` in ascending item order, reproducing the exact
// insertion sequence of a serial run.
//
// Semi-naive reuse (core/worklist.h): a relation's score list depends only
// on its (static) pair sample and the equivalence views of the pair
// components, so when `ctx.worklist` has an active relation set, RunShard
// skips relations none of whose members moved — their retained item lists
// are merged as-is. Like InstancePass, the lists are retained in two
// generations alternating per iteration, and reuse draws from the previous
// *same-parity* iteration (two back) to match the worklist's same-parity
// diffs (the exact attractor may be a period-2 cycle). Skipping never
// perturbs shard scheduling or merge order, and a skipped item's shard
// payload is byte-identical to a recomputed one.
class RelationPass final : public Pass {
 public:
  const char* name() const override { return "relation"; }
  size_t Prepare(IterationContext& ctx) override;
  void RunShard(size_t shard, size_t worker, IterationContext& ctx) override;
  void Merge(IterationContext& ctx) override;
  void SaveShard(size_t shard, std::string* out) const override;
  bool LoadShard(size_t shard, std::string_view bytes,
                 IterationContext& ctx) override;

 private:
  struct Scored {
    rdf::RelId sub;
    rdf::RelId super;
    double score;
    bool sub_is_left;
  };

  ShardLayout layout_;
  size_t num_left_ = 0;
  DirectionalContext l2r_;
  DirectionalContext r2l_;
  // One score list per item (relation), filled by RunShard (or LoadShard),
  // read by Merge, and retained across iterations for semi-naive reuse.
  // Two generations, alternating per iteration; `outputs_[gen_]` is active.
  std::array<std::vector<std::vector<Scored>>, 2> outputs_;
  // outputs_[g] holds a complete prior output (set by a semi_naive Merge);
  // precondition for reusing generation g.
  std::array<bool, 2> have_results_ = {false, false};
  // Active generation: alternates per Prepare (same parity = two back).
  size_t gen_ = 0;
  size_t prepare_count_ = 0;
  // This iteration skips relations clean in ctx.worklist (set in Prepare).
  bool reuse_ = false;
  // The per-worker scratch slots, bound in Prepare (RunShard must not call
  // ScratchSlots itself — it may allocate).
  std::vector<RelationShardScratch>* scratch_ = nullptr;
  // Registered in Prepare when ctx.obs.metrics is set; bumped per shard
  // with the worker's slot.
  obs::MetricId relations_scored_ = 0;
  obs::MetricId relations_reused_ = 0;
  obs::MetricId scores_emitted_ = 0;
};

}  // namespace paris::core

#endif  // PARIS_CORE_RELATION_ALIGN_H_
