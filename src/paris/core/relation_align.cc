#include "paris/core/relation_align.h"

#include <unordered_map>
#include <vector>

#include "paris/core/worklist.h"

namespace paris::core {

// Per-worker scratch for ScoreOneRelation, owned by the IterationContext so
// container capacity survives across relations, shards, and iterations. The
// reused maps' bucket layouts depend on history, but nothing below leaks
// map iteration order into the stored scores: every emitted entry is keyed
// by (sub, super), and `numerator` order only permutes entries within one
// relation's list, whose table insertion order no consumer observes
// (RelationScores::Entries() reports canonical order since PR 3).
struct RelationShardScratch {
  std::unordered_map<rdf::RelId, double> numerator;
  std::vector<Candidate> x_eq;
  std::vector<Candidate> y_eq;
  std::unordered_map<rdf::TermId, double> y_eq_probs;
  std::unordered_map<rdf::RelId, double> pair_products;
};

namespace {

// ZigZag encoding for the signed relation ids in shard payloads.
uint32_t ZigZag(rdf::RelId r) {
  return (static_cast<uint32_t>(r) << 1) ^ static_cast<uint32_t>(r >> 31);
}
rdf::RelId UnZigZag(uint32_t v) {
  return static_cast<rdf::RelId>((v >> 1) ^ (~(v & 1) + 1));
}

// Computes Pr(r ⊆ r') for one source relation r (positive id) against every
// relation r' of the target ontology, and stores entries above threshold via
// `store_score(r, r_prime, score)`.
template <typename StoreFn>
void ScoreOneRelation(rdf::RelId rel, const DirectionalContext& ctx,
                      const AlignmentConfig& config,
                      RelationShardScratch& scratch,
                      const StoreFn& store_score) {
  const ontology::Ontology& source = *ctx.source;
  const ontology::Ontology& target = *ctx.target;

  double denominator = 0.0;
  std::unordered_map<rdf::RelId, double>& numerator = scratch.numerator;
  std::vector<Candidate>& x_eq = scratch.x_eq;
  std::vector<Candidate>& y_eq = scratch.y_eq;
  std::unordered_map<rdf::TermId, double>& y_eq_probs = scratch.y_eq_probs;
  std::unordered_map<rdf::RelId, double>& pair_products =
      scratch.pair_products;
  numerator.clear();

  source.store().ForEachPair(
      rel, config.relation_pair_sample, [&](rdf::TermId x, rdf::TermId y) {
        x_eq.clear();
        y_eq.clear();
        ctx.AppendEquivalents(x, &x_eq);
        if (x_eq.empty()) return;
        ctx.AppendEquivalents(y, &y_eq);
        if (y_eq.empty()) return;

        // Denominator term (Eq. 11): the probability that the pair (x, y)
        // has *some* counterpart pair.
        double miss_all = 1.0;
        for (const Candidate& cx : x_eq) {
          for (const Candidate& cy : y_eq) {
            miss_all *= (1.0 - cx.prob * cy.prob);
          }
        }
        denominator += 1.0 - miss_all;

        // Numerator terms (Eq. 10), one per target relation r' that links
        // some x' ≈ x to some y' ≈ y.
        y_eq_probs.clear();
        for (const Candidate& cy : y_eq) y_eq_probs[cy.other] = cy.prob;
        pair_products.clear();
        for (const Candidate& cx : x_eq) {
          for (const rdf::Fact& f : target.FactsAbout(cx.other)) {
            // f = (r', y') encodes the statement r'(x', y').
            auto it = y_eq_probs.find(f.other);
            if (it == y_eq_probs.end()) continue;
            auto [pit, inserted] = pair_products.emplace(f.rel, 1.0);
            pit->second *= (1.0 - cx.prob * it->second);
          }
        }
        for (const auto& [r_prime, product] : pair_products) {
          numerator[r_prime] += 1.0 - product;
        }
      });

  if (denominator <= 0.0) return;
  for (const auto& [r_prime, num] : numerator) {
    const double score = num / denominator;
    if (score >= config.relation_min_score) {
      store_score(rel, r_prime, score > 1.0 ? 1.0 : score);
    }
  }
}

}  // namespace

size_t RelationPass::Prepare(IterationContext& ctx) {
  num_left_ = ctx.left->num_relations();
  const size_t total = num_left_ + ctx.right->num_relations();
  layout_ = ShardLayout::Make(total, ctx.config->num_shards);
  l2r_ = ctx.Direction(true, &ctx.current);
  r2l_ = ctx.Direction(false, &ctx.current);
  // Reuse is safe only when this generation's retained item lists are the
  // previous same-parity iteration's complete output over the same item
  // space as the worklist.
  gen_ = prepare_count_ % 2;
  ++prepare_count_;
  reuse_ = ctx.config->semi_naive && ctx.worklist != nullptr &&
           ctx.worklist->relations_active && have_results_[gen_] &&
           outputs_[gen_].size() == total &&
           ctx.worklist->dirty_left_rels.size() == num_left_ &&
           ctx.worklist->dirty_right_rels.size() == ctx.right->num_relations();
  outputs_[gen_].resize(total);
  if (!reuse_) {
    for (auto& item : outputs_[gen_]) item.clear();
  }
  scratch_ = &ctx.ScratchSlots<RelationShardScratch>();  // serial phase
  if (ctx.obs.metrics != nullptr) {  // serial phase: registration may allocate
    relations_scored_ = ctx.obs.metrics->Counter("relation.relations_scored");
    relations_reused_ = ctx.obs.metrics->Counter("relation.relations_reused");
    scores_emitted_ = ctx.obs.metrics->Counter("relation.scores_emitted");
  }
  return layout_.num_shards;
}

void RelationPass::RunShard(size_t shard, size_t worker,
                            IterationContext& ctx) {
  RelationShardScratch& scratch = (*scratch_)[worker];
  // Item i scores left relation i+1 for i < num_left, right relation
  // i-num_left+1 otherwise.
  std::vector<std::vector<Scored>>& outputs = outputs_[gen_];
  size_t computed = 0;
  size_t emitted = 0;
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    const bool is_left = i < num_left_;
    // Clean relation: no member moved its view since the previous
    // same-parity iteration, so the retained list holds exactly what this
    // iteration would recompute.
    if (reuse_ && (is_left ? ctx.worklist->dirty_left_rels[i]
                           : ctx.worklist->dirty_right_rels[i - num_left_]) ==
                      0) {
      continue;
    }
    const rdf::RelId rel =
        static_cast<rdf::RelId>(is_left ? i + 1 : i - num_left_ + 1);
    std::vector<Scored>& out = outputs[i];
    out.clear();
    ++computed;
    ScoreOneRelation(rel, is_left ? l2r_ : r2l_, *ctx.config, scratch,
                     [&](rdf::RelId sub, rdf::RelId super, double score) {
                       out.push_back(Scored{sub, super, score, is_left});
                     });
    emitted += out.size();
  }
  if (ctx.obs.metrics != nullptr) {
    ctx.obs.metrics->Add(relations_scored_, worker, computed);
    ctx.obs.metrics->Add(relations_reused_, worker,
                         layout_.end(shard) - layout_.begin(shard) - computed);
    ctx.obs.metrics->Add(scores_emitted_, worker, emitted);
  }
}

void RelationPass::Merge(IterationContext& ctx) {
  RelationScores scores;
  for (const std::vector<Scored>& item : outputs_[gen_]) {
    for (const Scored& s : item) {
      if (s.sub_is_left) {
        scores.SetSubLeftRight(s.sub, s.super, s.score);
      } else {
        scores.SetSubRightLeft(s.sub, s.super, s.score);
      }
    }
  }
  ctx.fresh_scores = std::move(scores);
  // The item lists stay in place; the next same-parity iteration reuses
  // them for relations its worklist marks clean.
  have_results_[gen_] = ctx.config->semi_naive;
}

void RelationPass::SaveShard(size_t shard, std::string* out) const {
  PayloadWriter writer;
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    writer.U32(static_cast<uint32_t>(outputs_[gen_][i].size()));
    for (const Scored& s : outputs_[gen_][i]) {
      writer.U8(s.sub_is_left ? 1 : 0);
      writer.U32(ZigZag(s.sub));
      writer.U32(ZigZag(s.super));
      writer.F64(s.score);
    }
  }
  *out = writer.Take();
}

bool RelationPass::LoadShard(size_t shard, std::string_view bytes,
                             IterationContext& ctx) {
  PayloadReader reader(bytes);
  const auto num_rels = [&](bool left_side) {
    return left_side ? ctx.left->num_relations() : ctx.right->num_relations();
  };
  // Decode into a staging area first so a payload rejected mid-way leaves
  // the item lists untouched (the shard then simply recomputes).
  std::vector<std::vector<Scored>> staged(layout_.end(shard) -
                                          layout_.begin(shard));
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    const bool is_left = i < num_left_;
    const rdf::RelId item_rel =
        static_cast<rdf::RelId>(is_left ? i + 1 : i - num_left_ + 1);
    uint32_t count = 0;
    // Each entry occupies 17 payload bytes (u8 + 2×u32 + f64); bounding the
    // count by that keeps a corrupt length field from provoking a giant
    // reserve() before per-entry validation runs.
    if (!reader.U32(&count) || count > bytes.size() / 17) return false;
    std::vector<Scored>& slot = staged[i - layout_.begin(shard)];
    slot.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      uint8_t entry_is_left = 0;
      uint32_t sub = 0;
      uint32_t super = 0;
      Scored s;
      if (!reader.U8(&entry_is_left) || entry_is_left > 1 ||
          !reader.U32(&sub) || !reader.U32(&super) || !reader.F64(&s.score)) {
        return false;
      }
      s.sub_is_left = entry_is_left == 1;
      s.sub = UnZigZag(sub);
      s.super = UnZigZag(super);
      // Every entry of an item was emitted for that item's relation and
      // side; anything else is a foreign payload.
      if (s.sub_is_left != is_left || s.sub != item_rel || s.super == 0 ||
          static_cast<size_t>(s.super < 0 ? -s.super : s.super) >
              num_rels(!s.sub_is_left) ||
          !(s.score >= 0.0) || s.score > 1.0) {
        return false;
      }
      slot.push_back(s);
    }
  }
  if (!reader.AtEnd()) return false;
  for (size_t i = layout_.begin(shard); i < layout_.end(shard); ++i) {
    outputs_[gen_][i] = std::move(staged[i - layout_.begin(shard)]);
  }
  return true;
}

}  // namespace paris::core
