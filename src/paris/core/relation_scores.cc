#include "paris/core/relation_scores.h"

#include <algorithm>
#include <cassert>

namespace paris::core {

void RelationScores::SetSubLeftRight(rdf::RelId left, rdf::RelId right,
                                     double score) {
  assert(left > 0 && "store canonical positive sub id");
  assert(!bootstrap_);
  left_sub_right_[util::PackPair(Encode(left), Encode(right))] = score;
  entries_cache_valid_ = false;
}

void RelationScores::SetSubRightLeft(rdf::RelId right, rdf::RelId left,
                                     double score) {
  assert(right > 0 && "store canonical positive sub id");
  assert(!bootstrap_);
  right_sub_left_[util::PackPair(Encode(right), Encode(left))] = score;
  entries_cache_valid_ = false;
}

const std::vector<RelationAlignmentEntry>& RelationScores::Entries() const {
  if (entries_cache_valid_) return entries_cache_;
  entries_cache_.clear();
  entries_cache_.reserve(size());
  for (const auto& [key, score] : left_sub_right_) {
    entries_cache_.push_back(RelationAlignmentEntry{
        Decode(util::UnpackFirst(key)), Decode(util::UnpackSecond(key)), score,
        /*sub_is_left=*/true});
  }
  for (const auto& [key, score] : right_sub_left_) {
    entries_cache_.push_back(RelationAlignmentEntry{
        Decode(util::UnpackFirst(key)), Decode(util::UnpackSecond(key)), score,
        /*sub_is_left=*/false});
  }
  // Canonical order (left direction first, then sub, then super): entry
  // order must be a function of the table *contents*, not of unordered_map
  // bucket layout, or a run resumed from a result snapshot could tie-break
  // differently than the cold run it mirrors.
  std::sort(entries_cache_.begin(), entries_cache_.end(),
            [](const RelationAlignmentEntry& a,
               const RelationAlignmentEntry& b) {
              if (a.sub_is_left != b.sub_is_left) return a.sub_is_left;
              if (a.sub != b.sub) return a.sub < b.sub;
              return a.super < b.super;
            });
  entries_cache_valid_ = true;
  return entries_cache_;
}

void RelationScores::DiffLeftRelations(const RelationScores& other,
                                       std::vector<rdf::RelId>* out) const {
  assert(!bootstrap_ && !other.bootstrap_);
  // In left_sub_right_ the packed sub is the left relation; in
  // right_sub_left_ it is the super.
  auto diff_table = [out](const Table& a, const Table& b, bool sub_is_left) {
    for (const auto& [key, score] : a) {
      auto it = b.find(key);
      if (it != b.end() && it->second == score) continue;
      const rdf::RelId left_rel = Decode(sub_is_left ? util::UnpackFirst(key)
                                                     : util::UnpackSecond(key));
      out->push_back(rdf::BaseRel(left_rel));
    }
  };
  diff_table(left_sub_right_, other.left_sub_right_, /*sub_is_left=*/true);
  diff_table(other.left_sub_right_, left_sub_right_, /*sub_is_left=*/true);
  diff_table(right_sub_left_, other.right_sub_left_, /*sub_is_left=*/false);
  diff_table(other.right_sub_left_, right_sub_left_, /*sub_is_left=*/false);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace paris::core

namespace paris::core {

void RelationScores::SetBootstrapPrior(rdf::RelId left, rdf::RelId right,
                                       double prior) {
  assert(bootstrap_);
  // Canonicalize to a positive sub id on each side.
  if (left < 0) {
    left = -left;
    right = -right;
  }
  left_sub_right_[util::PackPair(Encode(left), Encode(right))] = prior;
  rdf::RelId r = right;
  rdf::RelId l = left;
  if (r < 0) {
    r = -r;
    l = -l;
  }
  right_sub_left_[util::PackPair(Encode(r), Encode(l))] = prior;
  entries_cache_valid_ = false;
}

}  // namespace paris::core
