#include "paris/core/result_snapshot.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "paris/storage/column.h"
#include "paris/util/fs.h"

namespace paris::core {

namespace {

// Upper bound on serialized iteration records; the fixpoint converges in a
// handful, so anything larger is a corrupt count.
constexpr uint64_t kMaxIterations = 1 << 20;

// Upper bound on a partial checkpoint's shard count (ShardLayout caps the
// shard count at the item count, but the file is untrusted and the count
// sizes two reserve() calls before any per-shard validation).
constexpr uint64_t kMaxShards = 1 << 20;

void AppendU64(std::string* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendString(std::string* buf, std::string_view s) {
  AppendU64(buf, s.size());
  buf->append(s);
}

}  // namespace

uint64_t OntologyPairFingerprint(const ontology::Ontology& left,
                                 const ontology::Ontology& right) {
  std::string buf;
  AppendU64(&buf, left.pool().size());
  for (const ontology::Ontology* onto : {&left, &right}) {
    AppendString(&buf, onto->name());
    AppendU64(&buf, onto->num_triples());
    AppendU64(&buf, onto->num_relations());
    AppendU64(&buf, onto->instances().size());
    AppendU64(&buf, onto->classes().size());
    for (rdf::RelId r = 1;
         r <= static_cast<rdf::RelId>(onto->num_relations()); ++r) {
      AppendString(&buf, onto->RelationName(r));
    }
  }
  return storage::FnvHash(buf.data(), buf.size());
}

// ---------------------------------------------------------------------------
// Instance equivalences (friend of InstanceEquivalences)
// ---------------------------------------------------------------------------

// CSR over sorted left keys: keys, offsets, then the candidate (other, prob)
// pair split into two parallel columns so no struct padding reaches the file.
void SaveInstanceEquivalences(const InstanceEquivalences& equiv,
                              storage::SnapshotWriter& writer) {
  std::vector<rdf::TermId> keys;
  keys.reserve(equiv.left_to_right_.size());
  for (const auto& [left, candidates] : equiv.left_to_right_) {
    keys.push_back(left);
  }
  std::sort(keys.begin(), keys.end());

  std::vector<uint64_t> offsets;
  offsets.reserve(keys.size() + 1);
  offsets.push_back(0);
  std::vector<rdf::TermId> others;
  std::vector<double> probs;
  for (rdf::TermId key : keys) {
    for (const Candidate& c : equiv.left_to_right_.at(key)) {
      others.push_back(c.other);
      probs.push_back(c.prob);
    }
    offsets.push_back(others.size());
  }
  writer.WritePodVector(keys);
  writer.WritePodVector(offsets);
  writer.WritePodVector(others);
  writer.WritePodVector(probs);
}

util::StatusOr<InstanceEquivalences> LoadInstanceEquivalences(
    storage::SnapshotReader& reader, size_t pool_size) {
  storage::Column<rdf::TermId> keys;
  storage::Column<uint64_t> offsets;
  storage::Column<rdf::TermId> others;
  storage::Column<double> probs;
  if (!reader.ReadPodColumn(&keys) || !reader.ReadPodColumn(&offsets) ||
      !reader.ReadPodColumn(&others) || !reader.ReadPodColumn(&probs)) {
    return util::DataLossError(
        "truncated instance-equivalence section");
  }
  const auto invalid = [] {
    return util::DataLossError(
        "corrupt instance-equivalence section");
  };
  if (offsets.size() != keys.size() + 1 || offsets.front() != 0 ||
      offsets.back() != others.size() || others.size() != probs.size()) {
    return invalid();
  }
  InstanceEquivalences out;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0 && keys[i] <= keys[i - 1]) return invalid();
    if (static_cast<size_t>(keys[i]) >= pool_size) return invalid();
    const uint64_t begin = offsets[i];
    const uint64_t end = offsets[i + 1];
    // Strictly increasing (stored lists are never empty) and in bounds —
    // the endpoint checks above do not rule out a corrupt middle offset.
    if (end <= begin || end > others.size()) return invalid();
    std::vector<Candidate> candidates;
    candidates.reserve(end - begin);
    for (uint64_t j = begin; j < end; ++j) {
      if (static_cast<size_t>(others[j]) >= pool_size) return invalid();
      if (!(probs[j] > 0.0) || probs[j] > 1.0) return invalid();
      // The Set contract: sorted by descending prob, ties by ascending id.
      if (j > begin && !(probs[j - 1] > probs[j] ||
                         (probs[j - 1] == probs[j] &&
                          others[j - 1] < others[j]))) {
        return invalid();
      }
      candidates.push_back(Candidate{others[j], probs[j]});
    }
    out.Set(keys[i], std::move(candidates));
  }
  out.Finalize();
  return out;
}

// ---------------------------------------------------------------------------
// Relation scores (friend of RelationScores)
// ---------------------------------------------------------------------------

void SaveRelationScores(const RelationScores& scores,
                        storage::SnapshotWriter& writer) {
  writer.WriteU8(scores.bootstrap_ ? 1 : 0);
  writer.WriteDouble(scores.theta_);
  const auto save_table = [&writer](const RelationScores::Table& table) {
    std::vector<uint64_t> keys;
    keys.reserve(table.size());
    for (const auto& [key, score] : table) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    std::vector<double> values;
    values.reserve(keys.size());
    for (uint64_t key : keys) values.push_back(table.at(key));
    writer.WritePodVector(keys);
    writer.WritePodVector(values);
  };
  save_table(scores.left_sub_right_);
  save_table(scores.right_sub_left_);
}

util::StatusOr<RelationScores> LoadRelationScores(
    storage::SnapshotReader& reader, size_t num_left_relations,
    size_t num_right_relations) {
  RelationScores scores;
  scores.bootstrap_ = reader.ReadU8() != 0;
  scores.theta_ = reader.ReadDouble();
  if (!reader.ok() || scores.theta_ < 0.0 || scores.theta_ > 1.0) {
    return util::DataLossError("corrupt relation-score section");
  }
  const auto load_table = [&reader](RelationScores::Table* table,
                                    size_t num_sub, size_t num_super) {
    storage::Column<uint64_t> keys;
    storage::Column<double> values;
    if (!reader.ReadPodColumn(&keys) || !reader.ReadPodColumn(&values) ||
        keys.size() != values.size()) {
      return false;
    }
    table->reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0 && keys[i] <= keys[i - 1]) return false;
      const rdf::RelId sub =
          RelationScores::Decode(util::UnpackFirst(keys[i]));
      const rdf::RelId super =
          RelationScores::Decode(util::UnpackSecond(keys[i]));
      // Stored sub ids are canonical (positive); supers may be inverses.
      if (sub <= 0 || static_cast<size_t>(sub) > num_sub) return false;
      if (super == 0 ||
          static_cast<size_t>(super < 0 ? -super : super) > num_super) {
        return false;
      }
      if (values[i] < 0.0 || values[i] > 1.0) return false;
      table->emplace(keys[i], values[i]);
    }
    return true;
  };
  if (!load_table(&scores.left_sub_right_, num_left_relations,
                  num_right_relations) ||
      !load_table(&scores.right_sub_left_, num_right_relations,
                  num_left_relations)) {
    return util::DataLossError("corrupt relation-score section");
  }
  return scores;
}

// ---------------------------------------------------------------------------
// Class scores, config key, run metadata
// ---------------------------------------------------------------------------

namespace {

void SaveClassScores(const ClassScores& scores,
                     storage::SnapshotWriter& writer) {
  const auto& entries = scores.entries();
  std::vector<rdf::TermId> subs;
  std::vector<rdf::TermId> supers;
  std::vector<double> values;
  std::vector<uint8_t> sides;
  subs.reserve(entries.size());
  supers.reserve(entries.size());
  values.reserve(entries.size());
  sides.reserve(entries.size());
  for (const ClassAlignmentEntry& e : entries) {
    subs.push_back(e.sub);
    supers.push_back(e.super);
    values.push_back(e.score);
    sides.push_back(e.sub_is_left ? 1 : 0);
  }
  writer.WritePodVector(subs);
  writer.WritePodVector(supers);
  writer.WritePodVector(values);
  writer.WritePodVector(sides);
}

util::StatusOr<ClassScores> LoadClassScores(storage::SnapshotReader& reader,
                                            size_t pool_size) {
  storage::Column<rdf::TermId> subs;
  storage::Column<rdf::TermId> supers;
  storage::Column<double> values;
  storage::Column<uint8_t> sides;
  if (!reader.ReadPodColumn(&subs) || !reader.ReadPodColumn(&supers) ||
      !reader.ReadPodColumn(&values) || !reader.ReadPodColumn(&sides)) {
    return util::DataLossError("truncated class-score section");
  }
  if (supers.size() != subs.size() || values.size() != subs.size() ||
      sides.size() != subs.size()) {
    return util::DataLossError("corrupt class-score section");
  }
  std::vector<ClassAlignmentEntry> entries;
  entries.reserve(subs.size());
  for (size_t i = 0; i < subs.size(); ++i) {
    if (static_cast<size_t>(subs[i]) >= pool_size ||
        static_cast<size_t>(supers[i]) >= pool_size || sides[i] > 1 ||
        values[i] < 0.0 || values[i] > 1.0) {
      return util::DataLossError("corrupt class-score section");
    }
    entries.push_back(
        ClassAlignmentEntry{subs[i], supers[i], values[i], sides[i] == 1});
  }
  return ClassScores(std::move(entries));
}

// The trajectory-shaping config fields, in serialization order. Doubles are
// written and compared as IEEE-754 bit patterns: "same run" means the same
// bits, not approximately the same values.
void SaveRunKey(storage::SnapshotWriter& writer,
                const ontology::Ontology& left,
                const ontology::Ontology& right,
                const AlignmentConfig& config, const std::string& matcher) {
  writer.WriteU64(OntologyPairFingerprint(left, right));
  writer.WriteString(matcher);
  writer.WriteDouble(config.theta);
  writer.WriteDouble(config.convergence_threshold);
  writer.WriteDouble(config.instance_threshold);
  writer.WriteDouble(config.relation_min_score);
  writer.WriteDouble(config.class_min_score);
  writer.WriteU8(config.use_negative_evidence ? 1 : 0);
  writer.WriteU8(config.use_full_equalities ? 1 : 0);
  writer.WriteU64(config.relation_pair_sample);
  writer.WriteU64(config.class_instance_sample);
  writer.WriteU64(config.max_candidates_per_instance);
  writer.WriteU64(config.max_neighbor_fanout);
  writer.WriteU32(static_cast<uint32_t>(config.functionality_variant));
  writer.WriteDouble(config.dampening);
  writer.WriteU8(config.use_relation_name_prior ? 1 : 0);
  writer.WriteDouble(config.name_prior_cap);
}

util::Status CheckRunKey(storage::SnapshotReader& reader,
                         const ontology::Ontology& left,
                         const ontology::Ontology& right,
                         const AlignmentConfig& config,
                         const std::string& matcher) {
  const auto mismatch = [](const std::string& field, const std::string& was,
                           const std::string& now) {
    return util::FailedPreconditionError(
        "result snapshot is from a different run setup: " + field + " was " +
        was + ", this run uses " + now);
  };
  if (reader.ReadU64() != OntologyPairFingerprint(left, right)) {
    if (!reader.ok()) {
      return util::DataLossError("truncated result snapshot");
    }
    return util::FailedPreconditionError(
        "result snapshot was produced from a different ontology pair");
  }
  const std::string stored_matcher = reader.ReadString();
  if (!reader.ok()) {
    return util::DataLossError("truncated result snapshot");
  }
  if (stored_matcher != matcher) {
    return mismatch("matcher", stored_matcher, matcher);
  }

  util::Status status = util::OkStatus();
  const auto check_double = [&](const char* field, double now) {
    const uint64_t was_bits = reader.ReadU64();
    if (!status.ok() || !reader.ok()) return;
    if (was_bits != std::bit_cast<uint64_t>(now)) {
      status = mismatch(field, std::to_string(std::bit_cast<double>(was_bits)),
                        std::to_string(now));
    }
  };
  const auto check_u64 = [&](const char* field, uint64_t now) {
    const uint64_t was = reader.ReadU64();
    if (!status.ok() || !reader.ok()) return;
    if (was != now) {
      status = mismatch(field, std::to_string(was), std::to_string(now));
    }
  };
  const auto check_bool = [&](const char* field, bool now) {
    const uint8_t was = reader.ReadU8();
    if (!status.ok() || !reader.ok()) return;
    if ((was != 0) != now) {
      status = mismatch(field, was != 0 ? "true" : "false",
                        now ? "true" : "false");
    }
  };
  check_double("theta", config.theta);
  check_double("convergence_threshold", config.convergence_threshold);
  check_double("instance_threshold", config.instance_threshold);
  check_double("relation_min_score", config.relation_min_score);
  check_double("class_min_score", config.class_min_score);
  check_bool("use_negative_evidence", config.use_negative_evidence);
  check_bool("use_full_equalities", config.use_full_equalities);
  check_u64("relation_pair_sample", config.relation_pair_sample);
  check_u64("class_instance_sample", config.class_instance_sample);
  check_u64("max_candidates_per_instance",
            config.max_candidates_per_instance);
  check_u64("max_neighbor_fanout", config.max_neighbor_fanout);
  {
    const uint32_t was = reader.ReadU32();
    if (status.ok() && reader.ok() &&
        was != static_cast<uint32_t>(config.functionality_variant)) {
      status = mismatch("functionality_variant", std::to_string(was),
                        std::to_string(static_cast<uint32_t>(
                            config.functionality_variant)));
    }
  }
  check_double("dampening", config.dampening);
  check_bool("use_relation_name_prior", config.use_relation_name_prior);
  check_double("name_prior_cap", config.name_prior_cap);
  if (!reader.ok()) {
    return util::DataLossError("truncated result snapshot");
  }
  return status;
}

// The sections behind the header; shared by the streaming and mmap paths.
util::StatusOr<AlignmentResult> LoadResultSections(
    storage::SnapshotReader& reader, const ontology::Ontology& left,
    const ontology::Ontology& right, const AlignmentConfig& config,
    const std::string& matcher) {
  util::Status key = CheckRunKey(reader, left, right, config, matcher);
  if (!key.ok()) return key;

  AlignmentResult result;
  const uint64_t num_iterations = reader.ReadU64();
  if (!reader.ok() || num_iterations > kMaxIterations) {
    return util::DataLossError("corrupt iteration records");
  }
  // Don't trust `num_iterations` for an upfront reservation — in streaming
  // mode the checksum is only verified after the sections, and
  // IterationRecord is large; a corrupt count fails at the first record's
  // index check instead.
  result.iterations.reserve(std::min<uint64_t>(num_iterations, 64));
  for (uint64_t i = 0; i < num_iterations; ++i) {
    IterationRecord record;
    record.index = static_cast<int>(reader.ReadU32());
    record.seconds_instances = reader.ReadDouble();
    record.seconds_relations = reader.ReadDouble();
    record.change_fraction = reader.ReadDouble();
    record.num_left_aligned = reader.ReadU64();
    if (!reader.ok() || record.index != static_cast<int>(i) + 1) {
      return util::DataLossError("corrupt iteration records");
    }
    result.iterations.push_back(std::move(record));
  }
  result.converged_at =
      static_cast<int>(static_cast<int32_t>(reader.ReadU32()));
  result.seconds_classes = reader.ReadDouble();
  result.seconds_total = reader.ReadDouble();
  if (!reader.ok() ||
      (result.converged_at != -1 &&
       (result.converged_at < 1 ||
        result.converged_at > static_cast<int>(num_iterations)))) {
    return util::DataLossError("corrupt iteration records");
  }

  const size_t pool_size = left.pool().size();
  auto instances = LoadInstanceEquivalences(reader, pool_size);
  if (!instances.ok()) return instances.status();
  result.instances = std::move(instances).value();
  auto relations = LoadRelationScores(reader, left.num_relations(),
                                      right.num_relations());
  if (!relations.ok()) return relations.status();
  result.relations = std::move(relations).value();
  auto classes = LoadClassScores(reader, pool_size);
  if (!classes.ok()) return classes.status();
  result.classes = std::move(classes).value();

  // Partial-iteration checkpoint (mid-iteration cancel), v2.
  const auto invalid_partial = [] {
    return util::DataLossError("corrupt partial-iteration section");
  };
  const uint8_t has_partial = reader.ReadU8();
  if (!reader.ok() || has_partial > 1) return invalid_partial();
  if (has_partial == 1) {
    PartialIterationState partial;
    partial.iteration = static_cast<int>(reader.ReadU32());
    partial.pass = static_cast<int>(reader.ReadU32());
    partial.num_shards = reader.ReadU32();
    const uint64_t num_cached = reader.ReadU64();
    // A partial iteration is always the one right after the completed
    // records, belongs to a cancellable pass, and can only exist in a run
    // that had not converged.
    if (!reader.ok() ||
        partial.iteration != static_cast<int>(num_iterations) + 1 ||
        (partial.pass != kInstancePass && partial.pass != kRelationPass) ||
        partial.num_shards > kMaxShards || num_cached > partial.num_shards ||
        result.converged_at != -1) {
      return invalid_partial();
    }
    partial.shards.reserve(num_cached);
    partial.payloads.reserve(num_cached);
    for (uint64_t i = 0; i < num_cached; ++i) {
      const uint32_t shard = reader.ReadU32();
      std::string payload = reader.ReadString();
      if (!reader.ok() || shard >= partial.num_shards ||
          (i > 0 && shard <= partial.shards.back())) {
        return invalid_partial();
      }
      partial.shards.push_back(shard);
      partial.payloads.push_back(std::move(payload));
    }
    if (partial.pass == kRelationPass) {
      auto current = LoadInstanceEquivalences(reader, pool_size);
      if (!current.ok()) return current.status();
      partial.instances = std::move(current).value();
    }
    result.partial.emplace(std::move(partial));
  }
  return result;
}

}  // namespace

namespace {

// Writes one complete snapshot file — magic through checksum trailer —
// from a non-owning view. Both the atomic file save and the in-memory
// checkpoint serialization go through here, so the formats cannot drift.
void WriteResultSections(storage::SnapshotWriter& writer, std::ostream& raw,
                         const ResultSnapshotView& view,
                         const ontology::Ontology& left,
                         const ontology::Ontology& right,
                         const AlignmentConfig& config,
                         const std::string& matcher) {
  raw.write(kResultSnapshotMagic, sizeof(kResultSnapshotMagic));
  writer.WriteU32(kResultSnapshotVersion);
  SaveRunKey(writer, left, right, config, matcher);

  writer.WriteU64(view.iterations.size());
  for (const IterationRecord& record : view.iterations) {
    writer.WriteU32(static_cast<uint32_t>(record.index));
    writer.WriteDouble(record.seconds_instances);
    writer.WriteDouble(record.seconds_relations);
    writer.WriteDouble(record.change_fraction);
    writer.WriteU64(record.num_left_aligned);
  }
  writer.WriteU32(static_cast<uint32_t>(view.converged_at));
  writer.WriteDouble(view.seconds_classes);
  writer.WriteDouble(view.seconds_total);

  SaveInstanceEquivalences(*view.instances, writer);
  SaveRelationScores(*view.relations, writer);
  static const ClassScores kNoClasses;
  SaveClassScores(view.classes != nullptr ? *view.classes : kNoClasses,
                  writer);

  // Partial-iteration checkpoint (mid-iteration cancel), v2.
  writer.WriteU8(view.has_partial ? 1 : 0);
  if (view.has_partial) {
    writer.WriteU32(static_cast<uint32_t>(view.partial_iteration));
    writer.WriteU32(static_cast<uint32_t>(view.partial_pass));
    writer.WriteU32(view.partial_num_shards);
    writer.WriteU64(view.partial_shards.size());
    for (size_t i = 0; i < view.partial_shards.size(); ++i) {
      writer.WriteU32(view.partial_shards[i]);
      writer.WriteString(view.partial_payloads[i]);
    }
    if (view.partial_pass == kRelationPass) {
      SaveInstanceEquivalences(*view.partial_instances, writer);
    }
  }
  writer.WriteU64(writer.checksum());
}

ResultSnapshotView ViewOf(const AlignmentResult& result) {
  ResultSnapshotView view;
  view.iterations = result.iterations;
  view.converged_at = result.converged_at;
  view.seconds_classes = result.seconds_classes;
  view.seconds_total = result.seconds_total;
  view.instances = &result.instances;
  view.relations = &result.relations;
  view.classes = &result.classes;
  if (result.partial.has_value()) {
    const PartialIterationState& partial = *result.partial;
    view.has_partial = true;
    view.partial_iteration = partial.iteration;
    view.partial_pass = partial.pass;
    view.partial_num_shards = partial.num_shards;
    view.partial_shards = partial.shards;
    view.partial_payloads = partial.payloads;
    view.partial_instances = &partial.instances;
  }
  return view;
}

}  // namespace

util::Status SaveAlignmentResult(const std::string& path,
                                 const AlignmentResult& result,
                                 const ontology::Ontology& left,
                                 const ontology::Ontology& right,
                                 const AlignmentConfig& config,
                                 const std::string& matcher) {
  if (&left.pool() != &right.pool()) {
    return util::InvalidArgumentError(
        "result snapshot requires both ontologies to share one term pool");
  }
  util::AtomicFileWriter out(path);
  storage::SnapshotWriter writer(out.stream());
  WriteResultSections(writer, out.stream(), ViewOf(result), left, right,
                      config, matcher);
  return out.Commit();
}

std::string SerializeAlignmentResult(const ResultSnapshotView& view,
                                     const ontology::Ontology& left,
                                     const ontology::Ontology& right,
                                     const AlignmentConfig& config,
                                     const std::string& matcher) {
  std::ostringstream out(std::ios::binary);
  storage::SnapshotWriter writer(out);
  WriteResultSections(writer, out, view, left, right, config, matcher);
  return std::move(out).str();
}

util::StatusOr<AlignmentResult> LoadAlignmentResult(
    const std::string& path, const ontology::Ontology& left,
    const ontology::Ontology& right, const AlignmentConfig& config,
    const std::string& matcher, storage::SnapshotLoadMode mode) {
  std::optional<AlignmentResult> out;
  util::Status status = storage::LoadSnapshotFile(
      path, mode, kResultSnapshotMagic, kResultSnapshotVersion,
      kResultSnapshotVersion, "result snapshot",
      [&](storage::SnapshotReader& reader, uint32_t /*file_version*/) {
        auto result = LoadResultSections(reader, left, right, config, matcher);
        if (!result.ok()) return result.status();
        out.emplace(std::move(result).value());
        return util::OkStatus();
      });
  if (!status.ok()) return status;
  // A checkpoint with more completed iterations than the requested cap
  // cannot reproduce a cold run under that cap — reject rather than return
  // a result that exceeds it.
  if (out->iterations.size() > static_cast<size_t>(
                                   std::max(config.max_iterations, 0))) {
    return util::FailedPreconditionError(
        "result snapshot completed " + std::to_string(out->iterations.size()) +
        " iterations, more than max_iterations=" +
        std::to_string(config.max_iterations) + " of this run");
  }
  return std::move(*out);
}

}  // namespace paris::core
