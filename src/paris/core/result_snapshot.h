#ifndef PARIS_CORE_RESULT_SNAPSHOT_H_
#define PARIS_CORE_RESULT_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>

#include "paris/core/aligner.h"
#include "paris/ontology/ontology.h"
#include "paris/storage/snapshot.h"
#include "paris/util/status.h"

namespace paris::core {

// Versioned binary snapshot of an `AlignmentResult` — the alignment
// *output* state, as opposed to the ontology snapshots of
// src/ontology/snapshot.h which persist the *input*. Saving the result
// after iteration k and loading it into `Aligner::Resume` continues the
// fixpoint at iteration k+1 with final state identical to an uninterrupted
// run (`paris_align --save-result/--resume-from`).
//
// File layout (storage::SnapshotWriter framing; scalars little-endian, POD
// arrays 8-byte aligned, FNV-1a trailer):
//
//   magic    "PARISRS\n"
//   version  u32 (currently 2)
//   key      ontology-pair fingerprint u64, matcher name, and every
//            trajectory-shaping AlignmentConfig field
//   run      iteration records (index, wall times, change fraction,
//            aligned count), converged_at, class/total seconds
//   tables   instance equivalences (sorted keys + CSR offsets + candidate
//            columns), relation scores (sorted packed keys + scores, both
//            directions, bootstrap state), class scores (entry columns)
//   partial  u8 present flag; when set, the mid-iteration checkpoint of a
//            shard-level cancel (v2): interrupted iteration + pass, shard
//            count, the completed shards' ids and opaque payloads, and —
//            for a relation-pass cancel — the iteration's instance
//            equivalences
//   trailer  u64 FNV-1a checksum of every byte after the magic
//
// Everything map-shaped is serialized in sorted key order, so identical
// results produce byte-identical files. Per-iteration history snapshots
// (`IterationRecord::max_left/max_right/relations`) are NOT serialized —
// they feed the experiment tables, not the fixpoint; a resumed run carries
// the scalar records of the completed iterations only.
//
// The key section makes resuming under a different setup fail loudly:
// loading verifies the stored matcher, config fields, and ontology
// fingerprint against the caller's. `num_threads`, `num_shards`,
// `record_history`, and `max_iterations` are deliberately excluded —
// resuming on different hardware or with a raised iteration cap is the
// point of the snapshot (a different `num_shards` merely drops the partial
// section's cached shards; results are unaffected).

inline constexpr char kResultSnapshotMagic[8] = {'P', 'A', 'R', 'I',
                                                 'S', 'R', 'S', '\n'};
inline constexpr uint32_t kResultSnapshotVersion = 2;

// Cheap identity of the ontology pair a result belongs to: FNV-1a over the
// shared pool size and both sides' name, triple/relation/instance/class
// counts, and relation names. Not a content checksum — it detects "resumed
// against the wrong dataset", not bit rot (the input snapshot's own
// checksum covers that).
uint64_t OntologyPairFingerprint(const ontology::Ontology& left,
                                 const ontology::Ontology& right);

// Writes `result` to `path` via util::AtomicFileWriter: a crash at any
// instant leaves either the complete previous file or the complete new one.
// `config` must be the resolved config the run used (`Aligner::config()`,
// after instance_threshold resolution), and `matcher` the literal-matcher
// name; both are stored for the resume-time compatibility check.
util::Status SaveAlignmentResult(const std::string& path,
                                 const AlignmentResult& result,
                                 const ontology::Ontology& left,
                                 const ontology::Ontology& right,
                                 const AlignmentConfig& config,
                                 const std::string& matcher);

// A non-owning view of the state a result snapshot serializes. This is the
// capture path of the periodic background checkpointer: the aligner points
// the view at its live tables (under the serialized shard gate, where they
// are stable) and serializes without copying any of them — in particular
// no `IterationRecord` history maps are touched (only scalar fields are
// serialized, exactly as SaveAlignmentResult does).
struct ResultSnapshotView {
  std::span<const IterationRecord> iterations;  // completed iterations
  int converged_at = -1;
  double seconds_classes = 0.0;
  double seconds_total = 0.0;
  const InstanceEquivalences* instances = nullptr;  // required
  const RelationScores* relations = nullptr;        // required
  const ClassScores* classes = nullptr;             // nullptr = empty
  // Mirrors AlignmentResult::partial (the mid-iteration section).
  bool has_partial = false;
  int partial_iteration = 0;
  int partial_pass = 0;
  uint32_t partial_num_shards = 0;
  std::span<const uint32_t> partial_shards;
  std::span<const std::string> partial_payloads;
  // Required when partial_pass == kRelationPass.
  const InstanceEquivalences* partial_instances = nullptr;
};

// Serializes one complete result-snapshot file (magic through checksum
// trailer) into memory. The returned bytes are exactly what
// SaveAlignmentResult would have written; LoadAlignmentResult accepts them
// byte-identically. Used by the checkpointer so the (slow, fsync'd) file
// write happens on a background thread while the run moves on.
std::string SerializeAlignmentResult(const ResultSnapshotView& view,
                                     const ontology::Ontology& left,
                                     const ontology::Ontology& right,
                                     const AlignmentConfig& config,
                                     const std::string& matcher);

// Loads a result snapshot for resumption against the given ontology pair
// and run setup. Rejects files with a bad magic/version, a checksum
// mismatch (corruption / truncation), structurally invalid sections, a
// key section that does not match `left`/`right`/`config`/`matcher`, or
// more completed iterations than `config.max_iterations` allows (a resume
// cannot un-run iterations). The mmap path verifies the whole-file
// checksum before adopting any view (checksum-before-map, like the
// ontology snapshots); either way the returned result owns all its memory
// — no view outlives the load.
util::StatusOr<AlignmentResult> LoadAlignmentResult(
    const std::string& path, const ontology::Ontology& left,
    const ontology::Ontology& right, const AlignmentConfig& config,
    const std::string& matcher,
    storage::SnapshotLoadMode mode = storage::SnapshotLoadMode::kAuto);

}  // namespace paris::core

#endif  // PARIS_CORE_RESULT_SNAPSHOT_H_
