#ifndef PARIS_CORE_DIRECTION_H_
#define PARIS_CORE_DIRECTION_H_

#include <algorithm>
#include <span>
#include <vector>

#include "paris/core/equiv.h"
#include "paris/core/literal_match.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/triple.h"

namespace paris::core {

// A directional view of the alignment state used by all passes: expands a
// term of the `source` ontology to its equivalents in the `target` ontology.
//  * literals go through the literal matcher (§5.3, probabilities clamped),
//  * instances go through the previous iteration's equivalence store —
//    either only the maximal assignment (§5.2 default) or the full
//    distribution (`use_full`, the §6.3 ablation).
struct DirectionalContext {
  const ontology::Ontology* source = nullptr;
  const ontology::Ontology* target = nullptr;
  const LiteralMatcher* matcher = nullptr;        // source literal → target
  const InstanceEquivalences* equiv = nullptr;    // may be null (iteration 1)
  bool source_is_left = true;
  bool use_full = false;

  // Appends the equivalents of `y` (with positive probability) to `out`.
  void AppendEquivalents(rdf::TermId y, std::vector<Candidate>* out) const {
    if (source->pool().IsLiteral(y)) {
      if (matcher != nullptr) matcher->Match(y, out);
      return;
    }
    if (equiv == nullptr || !equiv->finalized()) return;
    if (use_full) {
      const auto span =
          source_is_left ? equiv->LeftToRight(y) : equiv->RightToLeft(y);
      out->insert(out->end(), span.begin(), span.end());
      return;
    }
    const Candidate* best =
        source_is_left ? equiv->MaxOfLeft(y) : equiv->MaxOfRight(y);
    if (best != nullptr) out->push_back(*best);
  }
};

// The facts of `facts` whose relation is exactly `rel`. Adjacency spans are
// sorted by (rel, other), so this is one binary search per bound; prefer
// `TripleStore::FactsAbout(t, rel)` unless the span is already in hand.
inline std::span<const rdf::Fact> FactsWithRelation(
    std::span<const rdf::Fact> facts, rdf::RelId rel) {
  auto lo = std::lower_bound(
      facts.begin(), facts.end(), rel,
      [](const rdf::Fact& f, rdf::RelId r) { return f.rel < r; });
  auto hi = std::upper_bound(
      lo, facts.end(), rel,
      [](rdf::RelId r, const rdf::Fact& f) { return r < f.rel; });
  return facts.subspan(static_cast<size_t>(lo - facts.begin()),
                       static_cast<size_t>(hi - lo));
}

}  // namespace paris::core

#endif  // PARIS_CORE_DIRECTION_H_
