#include "paris/core/explain.h"

#include <algorithm>
#include <sstream>

#include "paris/core/aligner.h"

namespace paris::core {

MatchExplanation ExplainMatch(const ontology::Ontology& left,
                              const ontology::Ontology& right,
                              const AlignmentResult& result,
                              const LiteralMatcher& matcher,
                              const AlignmentConfig& config, rdf::TermId x,
                              rdf::TermId x_prime) {
  DirectionalContext l2r;
  l2r.source = &left;
  l2r.target = &right;
  l2r.matcher = &matcher;
  l2r.equiv = &result.instances;
  l2r.source_is_left = true;
  l2r.use_full = config.use_full_equalities;
  return ExplainMatch(left, right, result.relations, l2r, config, x, x_prime);
}

MatchExplanation ExplainMatch(const ontology::Ontology& left,
                              const ontology::Ontology& right,
                              const RelationScores& rel_scores,
                              const DirectionalContext& l2r,
                              const AlignmentConfig& config, rdf::TermId x,
                              rdf::TermId x_prime) {
  MatchExplanation out;
  out.left = x;
  out.right = x_prime;
  const auto variant = config.functionality_variant;

  std::vector<Candidate> equivalents;
  for (const rdf::Fact& f : left.FactsAbout(x)) {
    equivalents.clear();
    l2r.AppendEquivalents(f.other, &equivalents);
    const double fun_inv_r =
        left.functionality().GlobalInverse(f.rel, variant);
    for (const Candidate& y_eq : equivalents) {
      // Statements r'(x', y') are adjacency entries (r', y') of x'.
      for (const rdf::Fact& cf : right.FactsAbout(x_prime)) {
        if (cf.other != y_eq.other) continue;
        const rdf::RelId r_prime = cf.rel;
        const double p_sub_rl = rel_scores.SubRightLeft(r_prime, f.rel);
        const double p_sub_lr = rel_scores.SubLeftRight(f.rel, r_prime);
        if (p_sub_rl <= 0.0 && p_sub_lr <= 0.0) continue;
        EvidenceItem item;
        item.left_rel = f.rel;
        item.right_rel = r_prime;
        item.left_value = f.other;
        item.right_value = y_eq.other;
        item.value_prob = y_eq.prob;
        item.sub_right_left = p_sub_rl;
        item.sub_left_right = p_sub_lr;
        item.fun_inv_left = fun_inv_r;
        item.fun_inv_right =
            right.functionality().GlobalInverse(r_prime, variant);
        item.factor = (1.0 - p_sub_rl * fun_inv_r * y_eq.prob) *
                      (1.0 - p_sub_lr * item.fun_inv_right * y_eq.prob);
        if (item.factor < 1.0) out.evidence.push_back(item);
      }
    }
  }
  std::sort(out.evidence.begin(), out.evidence.end(),
            [](const EvidenceItem& a, const EvidenceItem& b) {
              return a.factor < b.factor;
            });
  double product = 1.0;
  for (const EvidenceItem& item : out.evidence) product *= item.factor;
  out.probability = 1.0 - product;
  return out;
}

std::string MatchExplanation::ToString(
    const ontology::Ontology& left_onto,
    const ontology::Ontology& right_onto) const {
  std::ostringstream os;
  os << "Pr(" << left_onto.TermName(left) << " ≡ "
     << right_onto.TermName(right) << ") = " << probability << "\n";
  for (const EvidenceItem& item : evidence) {
    os << "  " << left_onto.RelationName(item.left_rel) << "("
       << left_onto.TermName(item.left_value) << ")  ~  "
       << right_onto.RelationName(item.right_rel) << "("
       << right_onto.TermName(item.right_value) << ")"
       << "  Pr(y≡y')=" << item.value_prob
       << " fun⁻¹=" << item.fun_inv_left << "/" << item.fun_inv_right
       << " sub=" << item.sub_right_left << "/" << item.sub_left_right
       << " → factor " << item.factor << "\n";
  }
  return os.str();
}

}  // namespace paris::core
