#include "paris/eval/report.h"

#include <algorithm>
#include <cstdio>

namespace paris::eval {

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto append_row = [&](std::string& out,
                        const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += cell;
      if (c + 1 < widths.size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += "\n";
  };
  std::string out;
  append_row(out, headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

std::string TablePrinter::Pct(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

std::string TablePrinter::Pct1(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string TablePrinter::Fixed(double value, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace paris::eval
