#ifndef PARIS_EVAL_METRICS_H_
#define PARIS_EVAL_METRICS_H_

#include <cstddef>
#include <functional>
#include <unordered_map>

#include "paris/core/class_align.h"
#include "paris/core/equiv.h"
#include "paris/core/relation_scores.h"
#include "paris/synth/derive.h"

namespace paris::eval {

// Precision / recall / F1 with raw counts, evaluated exactly as §6.1 of the
// paper: only the maximal assignment counts, and the probability score is
// ignored.
struct PrecisionRecall {
  size_t predicted = 0;  // left entities with a maximal assignment
  size_t correct = 0;    // ... whose assignment is the gold counterpart
  size_t gold = 0;       // gold pairs (recall denominator)

  double precision() const {
    return predicted == 0 ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(predicted);
  }
  double recall() const {
    return gold == 0 ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(gold);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

// Scores a maximal assignment map (left instance → best candidate) against
// the derived gold standard. A prediction for an instance without a gold
// counterpart is a false positive.
PrecisionRecall EvaluateInstanceMap(
    const std::unordered_map<rdf::TermId, core::Candidate>& max_left,
    const synth::DerivedGold& gold);

// Same, from a finalized equivalence store.
PrecisionRecall EvaluateInstances(const core::InstanceEquivalences& equiv,
                                  const synth::DerivedGold& gold);

// Restricted to left instances for which `include_left` is true (both the
// predictions and the gold denominator are filtered). Used for the paper's
// "entities with more than 10 facts" breakdown (§6.4).
PrecisionRecall EvaluateInstancesFiltered(
    const core::InstanceEquivalences& equiv, const synth::DerivedGold& gold,
    const std::function<bool(rdf::TermId)>& include_left);

// ---- Relations (manual evaluation in the paper; derived gold here) ----

struct AssignmentEval {
  size_t assigned = 0;   // sub items with a maximal assignment ≥ threshold
  size_t correct = 0;    // ... whose assignment is a true containment
  size_t alignable = 0;  // sub items with some true containment (recall den.)

  double precision() const {
    return assigned == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(assigned);
  }
  double recall() const {
    return alignable == 0 ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(alignable);
  }
};

// Evaluates the maximally-assigned super-relation of every (positive)
// relation of one side, as the paper does ("we consider only the maximally
// assigned relation").
AssignmentEval EvaluateRelations(const core::RelationScores& scores,
                                 const synth::DerivedGold& gold,
                                 bool sub_is_left, double threshold);

// Evaluates the maximally-assigned super-class of every class of one side
// (the Table 1 class metric).
AssignmentEval EvaluateClassesMaximal(const core::ClassScores& scores,
                                      const synth::DerivedGold& gold,
                                      bool sub_is_left, double threshold);

// All class-alignment entries of one direction above `threshold`:
// count + precision (the Figure 1 quantity).
struct ClassEntriesEval {
  size_t entries = 0;
  size_t correct = 0;
  size_t aligned_subclasses = 0;  // distinct sub classes (Figure 2 quantity)

  double precision() const {
    return entries == 0 ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(entries);
  }
};

ClassEntriesEval EvaluateClassEntries(const core::ClassScores& scores,
                                      const synth::DerivedGold& gold,
                                      bool sub_is_left, double threshold);

}  // namespace paris::eval

#endif  // PARIS_EVAL_METRICS_H_
