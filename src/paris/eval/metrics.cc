#include "paris/eval/metrics.h"

#include <unordered_set>

namespace paris::eval {

PrecisionRecall EvaluateInstanceMap(
    const std::unordered_map<rdf::TermId, core::Candidate>& max_left,
    const synth::DerivedGold& gold) {
  PrecisionRecall pr;
  pr.gold = gold.num_instance_pairs();
  for (const auto& [left, candidate] : max_left) {
    ++pr.predicted;
    if (gold.InstanceMatch(left, candidate.other)) ++pr.correct;
  }
  return pr;
}

PrecisionRecall EvaluateInstances(const core::InstanceEquivalences& equiv,
                                  const synth::DerivedGold& gold) {
  return EvaluateInstanceMap(equiv.max_left(), gold);
}

PrecisionRecall EvaluateInstancesFiltered(
    const core::InstanceEquivalences& equiv, const synth::DerivedGold& gold,
    const std::function<bool(rdf::TermId)>& include_left) {
  PrecisionRecall pr;
  for (const auto& [left, right] : gold.left_to_right()) {
    if (include_left(left)) ++pr.gold;
  }
  for (const auto& [left, candidate] : equiv.max_left()) {
    if (!include_left(left)) continue;
    ++pr.predicted;
    if (gold.InstanceMatch(left, candidate.other)) ++pr.correct;
  }
  return pr;
}

AssignmentEval EvaluateRelations(const core::RelationScores& scores,
                                 const synth::DerivedGold& gold,
                                 bool sub_is_left, double threshold) {
  AssignmentEval eval;
  eval.alignable = gold.AlignableRelations(sub_is_left).size();

  // Best super per positive sub relation.
  std::unordered_map<rdf::RelId, core::RelationAlignmentEntry> best;
  for (const core::RelationAlignmentEntry& e : scores.Entries()) {
    if (e.sub_is_left != sub_is_left) continue;
    const rdf::RelId sub = rdf::BaseRel(e.sub);
    // Normalize the entry to a positive sub id (flip super with it).
    core::RelationAlignmentEntry norm = e;
    if (rdf::IsInverse(e.sub)) {
      norm.sub = sub;
      norm.super = rdf::Inverse(e.super);
    }
    auto it = best.find(sub);
    if (it == best.end() || norm.score > it->second.score) {
      best[sub] = norm;
    }
  }
  for (const auto& [sub, entry] : best) {
    if (entry.score < threshold) continue;
    ++eval.assigned;
    if (gold.RelationContained(sub_is_left, entry.sub, entry.super)) {
      ++eval.correct;
    }
  }
  return eval;
}

AssignmentEval EvaluateClassesMaximal(const core::ClassScores& scores,
                                      const synth::DerivedGold& gold,
                                      bool sub_is_left, double threshold) {
  AssignmentEval eval;
  eval.alignable = gold.AlignableClasses(sub_is_left).size();
  std::unordered_map<rdf::TermId, const core::ClassAlignmentEntry*> best;
  for (const core::ClassAlignmentEntry& e : scores.entries()) {
    if (e.sub_is_left != sub_is_left) continue;
    auto it = best.find(e.sub);
    if (it == best.end() || e.score > it->second->score) {
      best[e.sub] = &e;
    }
  }
  for (const auto& [sub, entry] : best) {
    if (entry->score < threshold) continue;
    ++eval.assigned;
    if (gold.ClassContained(sub_is_left, entry->sub, entry->super)) {
      ++eval.correct;
    }
  }
  return eval;
}

ClassEntriesEval EvaluateClassEntries(const core::ClassScores& scores,
                                      const synth::DerivedGold& gold,
                                      bool sub_is_left, double threshold) {
  ClassEntriesEval eval;
  std::unordered_set<rdf::TermId> subs;
  for (const core::ClassAlignmentEntry& e : scores.entries()) {
    if (e.sub_is_left != sub_is_left || e.score < threshold) continue;
    ++eval.entries;
    subs.insert(e.sub);
    if (gold.ClassContained(sub_is_left, e.sub, e.super)) ++eval.correct;
  }
  eval.aligned_subclasses = subs.size();
  return eval;
}

}  // namespace paris::eval
