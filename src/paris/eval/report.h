#ifndef PARIS_EVAL_REPORT_H_
#define PARIS_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace paris::eval {

// Minimal column-aligned ASCII table, used by the benchmark binaries to
// print the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  std::string ToString() const;

  // Formatting helpers: "90%", "90.1%", "3.14".
  static std::string Pct(double fraction);
  static std::string Pct1(double fraction);
  static std::string Fixed(double value, int digits);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace paris::eval

#endif  // PARIS_EVAL_REPORT_H_
