#include "paris/baseline/label_match.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "paris/util/string_util.h"

namespace paris::baseline {

namespace {

// label string (possibly normalized) → instances carrying it.
std::unordered_map<std::string, std::vector<rdf::TermId>> LabelIndex(
    const ontology::Ontology& onto,
    const std::vector<std::string>& label_relations, bool normalize) {
  std::unordered_map<std::string, std::vector<rdf::TermId>> index;
  const rdf::TermPool& pool = onto.pool();
  std::vector<rdf::RelId> rels;
  for (const std::string& name : label_relations) {
    const auto name_term = pool.Find(name, rdf::TermKind::kIri);
    if (!name_term.has_value()) continue;
    const auto rel = onto.store().FindRelation(*name_term);
    if (rel.has_value()) rels.push_back(*rel);
  }
  if (rels.empty()) return index;
  for (rdf::TermId instance : onto.instances()) {
    for (const rdf::Fact& f : onto.FactsAbout(instance)) {
      if (!pool.IsLiteral(f.other)) continue;
      if (std::find(rels.begin(), rels.end(), f.rel) == rels.end()) continue;
      std::string key(pool.lexical(f.other));
      if (normalize) key = util::NormalizeAlnum(key);
      index[key].push_back(instance);
    }
  }
  return index;
}

}  // namespace

core::InstanceEquivalences AlignByLabel(const ontology::Ontology& left,
                                        const ontology::Ontology& right,
                                        const LabelMatchConfig& config) {
  core::InstanceEquivalences result;
  const auto right_index =
      LabelIndex(right, config.right_label_relations, config.normalize);
  const auto left_index =
      LabelIndex(left, config.left_label_relations, config.normalize);

  for (const auto& [label, left_instances] : left_index) {
    if (config.require_unique && left_instances.size() != 1) continue;
    auto it = right_index.find(label);
    if (it == right_index.end()) continue;
    const auto& right_instances = it->second;
    if (config.require_unique && right_instances.size() != 1) continue;
    for (rdf::TermId l : left_instances) {
      std::vector<core::Candidate> candidates;
      for (rdf::TermId r : right_instances) {
        candidates.push_back(core::Candidate{r, 1.0});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const core::Candidate& a, const core::Candidate& b) {
                  return a.other < b.other;
                });
      result.Set(l, std::move(candidates));
    }
  }
  result.Finalize();
  return result;
}

}  // namespace paris::baseline
