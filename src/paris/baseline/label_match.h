#ifndef PARIS_BASELINE_LABEL_MATCH_H_
#define PARIS_BASELINE_LABEL_MATCH_H_

#include <string>
#include <vector>

#include "paris/core/equiv.h"
#include "paris/ontology/ontology.h"

namespace paris::baseline {

// Configuration of the label-matching baseline.
struct LabelMatchConfig {
  // Relations whose (literal) objects are treated as entity labels, per
  // side. Multiple relations cover schemas that split labels by entity kind
  // (IMDb: `name` for people, `title` for movies).
  std::vector<std::string> left_label_relations = {"rdfs:label"};
  std::vector<std::string> right_label_relations = {"rdfs:label"};
  // If true, an entity is only aligned when its label matches exactly one
  // entity on the other side (ambiguous labels produce no alignment). This
  // is the high-precision / low-recall behaviour the paper reports (97 %
  // precision, 70 % recall on YAGO–IMDb).
  bool require_unique = true;
  // Normalize labels (lowercase, strip non-alphanumerics) before comparing.
  bool normalize = false;
};

// The baseline of §6.4: aligns instances of two ontologies by exact match of
// their rdfs:label values. Returns a finalized equivalence store in the same
// format the PARIS aligner produces, so the evaluation harness can score
// both identically.
core::InstanceEquivalences AlignByLabel(const ontology::Ontology& left,
                                        const ontology::Ontology& right,
                                        const LabelMatchConfig& config = {});

}  // namespace paris::baseline

#endif  // PARIS_BASELINE_LABEL_MATCH_H_
