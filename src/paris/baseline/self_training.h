#ifndef PARIS_BASELINE_SELF_TRAINING_H_
#define PARIS_BASELINE_SELF_TRAINING_H_

#include <cstddef>

#include "paris/core/equiv.h"
#include "paris/ontology/ontology.h"

namespace paris::baseline {

// A self-training instance matcher in the spirit of ObjectCoref (Hu, Chen,
// Qu, WWW 2011) — the strongest comparison system in the paper's Table 1.
// ObjectCoref proper bootstraps from owl:sameAs training links; since PARIS
// is evaluated without training data, this variant bootstraps its kernel
// unsupervised and then self-trains:
//
//   1. Kernel: pairs that share a *discriminating* literal value — one
//      carried by exactly one instance on each side.
//   2. Learn: from the kernel, score property pairs (r, r') by how often
//      their values coincide on matched pairs (the "discriminative
//      property-value pair" learning of ObjectCoref, simplified).
//   3. Expand: match further instances that agree with an existing match's
//      values under a learned property pair, when the agreement is again
//      unambiguous (exactly one candidate).
//   4. Repeat (2)-(3) for `rounds` iterations.
//
// Unlike PARIS it aligns instances only — no relations, no classes — and
// has no probabilistic semantics; confidences are 1.0.
struct SelfTrainingConfig {
  int rounds = 3;
  // Minimum fraction of kernel matches on which a property pair's values
  // must agree for the pair to be considered discriminative.
  double min_property_agreement = 0.3;
  // A property pair must be observed on at least this many matched pairs.
  size_t min_property_support = 3;
};

core::InstanceEquivalences AlignBySelfTraining(
    const ontology::Ontology& left, const ontology::Ontology& right,
    const SelfTrainingConfig& config = {});

}  // namespace paris::baseline

#endif  // PARIS_BASELINE_SELF_TRAINING_H_
