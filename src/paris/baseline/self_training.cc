#include "paris/baseline/self_training.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "paris/util/hash.h"

namespace paris::baseline {

namespace {

using rdf::RelId;
using rdf::TermId;

// literal → instances carrying it through some relation, per side.
using ValueIndex = std::unordered_map<TermId, std::vector<TermId>>;

ValueIndex BuildValueIndex(const ontology::Ontology& onto) {
  ValueIndex index;
  for (TermId instance : onto.instances()) {
    for (const rdf::Fact& f : onto.FactsAbout(instance)) {
      if (f.rel > 0 && onto.pool().IsLiteral(f.other)) {
        index[f.other].push_back(instance);
      }
    }
  }
  for (auto& [value, instances] : index) {
    std::sort(instances.begin(), instances.end());
    instances.erase(std::unique(instances.begin(), instances.end()),
                    instances.end());
  }
  return index;
}

// The literal values of `instance` under relation `rel`.
std::vector<TermId> ValuesOf(const ontology::Ontology& onto, TermId instance,
                             RelId rel) {
  std::vector<TermId> values;
  for (const rdf::Fact& f : onto.FactsAbout(instance)) {
    if (f.rel == rel && onto.pool().IsLiteral(f.other)) {
      values.push_back(f.other);
    }
  }
  return values;
}

}  // namespace

core::InstanceEquivalences AlignBySelfTraining(
    const ontology::Ontology& left, const ontology::Ontology& right,
    const SelfTrainingConfig& config) {
  const ValueIndex left_index = BuildValueIndex(left);
  const ValueIndex right_index = BuildValueIndex(right);

  std::unordered_map<TermId, TermId> matched;        // left → right
  std::unordered_set<TermId> taken_right;

  auto try_match = [&](TermId l, TermId r) {
    if (matched.contains(l) || taken_right.contains(r)) return;
    matched.emplace(l, r);
    taken_right.insert(r);
  };

  // ---- 1. Kernel: discriminating shared values -------------------------
  for (const auto& [value, left_instances] : left_index) {
    if (left_instances.size() != 1) continue;
    auto it = right_index.find(value);
    if (it == right_index.end() || it->second.size() != 1) continue;
    try_match(left_instances[0], it->second[0]);
  }

  // ---- 2./3. Self-training rounds ---------------------------------------
  for (int round = 0; round < config.rounds; ++round) {
    // Learn discriminative property pairs from the current matches.
    struct PairStats {
      size_t seen = 0;
      size_t agree = 0;
    };
    std::unordered_map<uint64_t, PairStats> stats;  // (rel_l, rel_r) packed
    for (const auto& [l, r] : matched) {
      // Group each side's literal values by relation.
      std::unordered_map<RelId, std::vector<TermId>> left_values;
      for (const rdf::Fact& f : left.FactsAbout(l)) {
        if (f.rel > 0 && left.pool().IsLiteral(f.other)) {
          left_values[f.rel].push_back(f.other);
        }
      }
      for (const rdf::Fact& g : right.FactsAbout(r)) {
        if (g.rel <= 0 || !right.pool().IsLiteral(g.other)) continue;
        for (const auto& [rel_l, values] : left_values) {
          PairStats& ps = stats[util::PackPair(
              static_cast<uint32_t>(rel_l), static_cast<uint32_t>(g.rel))];
          ++ps.seen;
          if (std::find(values.begin(), values.end(), g.other) !=
              values.end()) {
            ++ps.agree;
          }
        }
      }
    }
    std::vector<std::pair<RelId, RelId>> discriminative;
    for (const auto& [key, ps] : stats) {
      if (ps.seen >= config.min_property_support &&
          static_cast<double>(ps.agree) >=
              config.min_property_agreement * static_cast<double>(ps.seen)) {
        discriminative.emplace_back(
            static_cast<RelId>(util::UnpackFirst(key)),
            static_cast<RelId>(util::UnpackSecond(key)));
      }
    }
    if (discriminative.empty()) break;

    // Expand: unmatched left instances whose value under a discriminative
    // property pair points at exactly one unmatched right instance.
    size_t added = 0;
    for (TermId l : left.instances()) {
      if (matched.contains(l)) continue;
      TermId unique_candidate = rdf::kNullTerm;
      bool ambiguous = false;
      for (const auto& [rel_l, rel_r] : discriminative) {
        for (TermId value : ValuesOf(left, l, rel_l)) {
          auto it = right_index.find(value);
          if (it == right_index.end()) continue;
          for (TermId r : it->second) {
            if (taken_right.contains(r)) continue;
            // r must carry the value under rel_r specifically.
            const auto r_values = ValuesOf(right, r, rel_r);
            if (std::find(r_values.begin(), r_values.end(), value) ==
                r_values.end()) {
              continue;
            }
            if (unique_candidate == rdf::kNullTerm) {
              unique_candidate = r;
            } else if (unique_candidate != r) {
              ambiguous = true;
            }
          }
        }
      }
      if (!ambiguous && unique_candidate != rdf::kNullTerm) {
        try_match(l, unique_candidate);
        ++added;
      }
    }
    if (added == 0) break;
  }

  core::InstanceEquivalences result;
  for (const auto& [l, r] : matched) {
    result.Set(l, {core::Candidate{r, 1.0}});
  }
  result.Finalize();
  return result;
}

}  // namespace paris::baseline
