#include "api/dataset.h"

#include <fstream>
#include <map>
#include <memory>

#include "ontology/export.h"
#include "ontology/snapshot.h"
#include "synth/profiles.h"
#include "util/thread_pool.h"

namespace paris::api {

util::StatusOr<DatasetSummary> GenerateDataset(const DatasetSpec& spec) {
  synth::ProfileOptions options;
  options.scale = spec.scale;
  std::unique_ptr<util::ThreadPool> workers;
  if (spec.num_threads > 0) {
    workers = std::make_unique<util::ThreadPool>(spec.num_threads);
    options.pool = workers.get();
  }

  util::StatusOr<synth::OntologyPair> pair =
      util::InvalidArgumentError("unknown profile: " + spec.profile +
                                 " (known: person, restaurant, yago-dbpedia, "
                                 "yago-imdb)");
  if (spec.profile == "person") {
    pair = synth::MakeOaeiPersonPair(options);
  } else if (spec.profile == "restaurant") {
    pair = synth::MakeOaeiRestaurantPair(options);
  } else if (spec.profile == "yago-dbpedia") {
    pair = synth::MakeYagoDbpediaPair(options);
  } else if (spec.profile == "yago-imdb") {
    pair = synth::MakeYagoImdbPair(options);
  }
  if (!pair.ok()) return pair.status();

  DatasetSummary summary;
  summary.left_path = spec.output_prefix + "_left.nt";
  summary.right_path = spec.output_prefix + "_right.nt";
  summary.gold_path = spec.output_prefix + "_gold.tsv";

  auto status = ontology::ExportToNTriplesFile(*pair->left, summary.left_path);
  if (!status.ok()) return status;
  status = ontology::ExportToNTriplesFile(*pair->right, summary.right_path);
  if (!status.ok()) return status;

  if (!spec.save_snapshot.empty()) {
    status = ontology::SaveAlignmentSnapshot(spec.save_snapshot, *pair->left,
                                             *pair->right);
    if (!status.ok()) return status;
    summary.snapshot_written = true;
  }

  std::ofstream gold(summary.gold_path);
  if (!gold) {
    return util::InvalidArgumentError("cannot open " + summary.gold_path +
                                      " for writing");
  }
  gold << "# gold instance pairs: left\tright\n";
  std::map<std::string, std::string> sorted;
  for (const auto& [l, r] : pair->gold.left_to_right()) {
    sorted.emplace(pair->left->TermName(l), pair->right->TermName(r));
  }
  for (const auto& [l, r] : sorted) gold << l << "\t" << r << "\n";

  summary.left_triples = pair->left->num_triples();
  summary.right_triples = pair->right->num_triples();
  summary.gold_pairs = pair->gold.num_instance_pairs();
  return summary;
}

}  // namespace paris::api
