// paris_align — align two RDF ontologies from the command line.
//
//   paris_align LEFT.nt RIGHT.ttl [options]      (see --help)
//
// Files ending in .ttl/.turtle are parsed as Turtle, everything else as
// N-Triples.
//
// This tool is a thin adapter over `paris::api::Session`: it parses flags,
// drives the load → align/resume → export lifecycle through the facade,
// prints the facade's results, and maps Status to the exit code. All
// engine behavior lives behind the API.
//
// Exit status 0 on success, 1 on usage/load/run errors (the failing path
// and Status code are reported on stderr).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "paris/paris.h"
#include "util/flags.h"

namespace {

int Fail(const paris::util::Status& status) {
  std::fprintf(stderr, "paris_align: %s\n", status.ToString().c_str());
  return 1;
}

int UsageError(const paris::util::FlagParser& parser,
               const paris::util::Status& status) {
  std::fprintf(stderr, "paris_align: %s\n%s\n", status.ToString().c_str(),
               parser.Usage().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  paris::api::Session::Options options;
  std::string output_prefix;
  std::string save_snapshot;
  std::string load_snapshot;
  std::string save_result;
  std::string resume_from;
  std::string load_mode = "auto";
  bool stats_only = false;

  paris::util::FlagParser parser("paris_align", "LEFT.nt RIGHT.nt");
  parser.AddString("--output", &output_prefix,
                   "write PREFIX_{instances,relations,classes}.tsv",
                   "PREFIX");
  parser.AddInt("--max-iterations", &options.config.max_iterations,
                "fixpoint cap (default 10)");
  parser.AddDouble("--theta", &options.config.theta,
                   "bootstrap sub-relation probability (default 0.1)");
  parser.AddChoice("--matcher", &options.matcher,
                   paris::api::MatcherRegistry::Default().Names(),
                   "literal matcher (default identity)");
  parser.AddSizeT("--threads", &options.config.num_threads,
                  "worker threads for the alignment passes and index "
                  "finalization");
  parser.AddSizeT("--shards", &options.config.num_shards,
                  "shards per alignment pass (0 = default 64); results are "
                  "identical across shard counts");
  bool progress = false;
  parser.AddBool("--progress", &progress,
                 "report per-shard pipeline progress on stderr");
  parser.AddBool("--negative-evidence", &options.config.use_negative_evidence,
                 "use Eq. (14) instead of Eq. (13)");
  parser.AddBool("--name-prior", &options.config.use_relation_name_prior,
                 "seed iteration 1 with relation-name similarity");
  parser.AddBool("--stats", &stats_only,
                 "print ontology statistics and exit");
  parser.AddString("--save-snapshot", &save_snapshot,
                   "after loading, write a binary snapshot of both "
                   "ontologies", "PATH");
  parser.AddString("--load-snapshot", &load_snapshot,
                   "load ontologies from a snapshot instead of parsing RDF "
                   "files", "PATH");
  parser.AddChoice("--snapshot-load-mode", &load_mode,
                   {"auto", "mmap", "stream"},
                   "how snapshots are brought in (default auto)");
  parser.AddString("--save-result", &save_result,
                   "after the run, write a binary snapshot of the alignment "
                   "result", "PATH");
  parser.AddString("--resume-from", &resume_from,
                   "continue a previous run from its result snapshot",
                   "PATH");

  std::vector<std::string> positional;
  auto status = parser.Parse(argc, argv, &positional);
  if (!status.ok()) return UsageError(parser, status);
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  if (load_mode == "mmap") {
    options.snapshot_load_mode = paris::api::SnapshotLoadMode::kMmap;
  } else if (load_mode == "stream") {
    options.snapshot_load_mode = paris::api::SnapshotLoadMode::kStream;
  }

  paris::api::Session session(options);

  // --- Load ---------------------------------------------------------------
  if (!load_snapshot.empty()) {
    // The snapshot replaces the RDF inputs entirely.
    if (!positional.empty()) {
      return UsageError(parser, paris::util::InvalidArgumentError(
                                    "positional inputs and --load-snapshot "
                                    "are mutually exclusive"));
    }
    status = session.LoadFromSnapshot(load_snapshot);
  } else {
    if (positional.size() != 2) {
      return UsageError(parser, paris::util::InvalidArgumentError(
                                    "expected exactly two input files"));
    }
    status = session.LoadFromFiles(positional[0], positional[1]);
  }
  if (!status.ok()) return Fail(status);

  if (!save_snapshot.empty()) {
    status = session.SaveSnapshot(save_snapshot);
    if (!status.ok()) return Fail(status);
    std::printf("wrote snapshot %s\n", save_snapshot.c_str());
  }

  if (stats_only) {
    status = session.PrintStats(std::cout);
    return status.ok() ? 0 : Fail(status);
  }

  // --- Align / resume -----------------------------------------------------
  paris::api::RunCallbacks callbacks;
  if (progress) {
    // Progress goes to stderr so the goldened stdout stays byte-identical.
    callbacks.on_shard = [](const paris::api::ShardProgress& shard) {
      std::fprintf(stderr, "progress: iteration %d %s pass %zu/%zu shards\n",
                   shard.iteration, shard.pass, shard.num_completed,
                   shard.num_shards);
    };
    callbacks.on_iteration = [](const paris::api::IterationProgress& it) {
      std::fprintf(stderr,
                   "progress: iteration %d/%d done, %zu aligned, "
                   "change %.4f\n",
                   it.iteration, it.max_iterations, it.num_aligned,
                   it.change_fraction);
    };
  }
  status = resume_from.empty() ? session.Align(callbacks)
                               : session.Resume(resume_from, callbacks);
  if (!status.ok()) return Fail(status);

  const paris::api::RunSummary summary = session.summary();
  if (!resume_from.empty()) {
    std::printf("resumed after iteration %zu\n", summary.resumed_iterations);
  }
  std::printf("aligned %zu instances, %zu relation scores, %zu class "
              "scores in %.2fs (%zu iterations%s)\n",
              summary.instances_aligned, summary.relation_scores,
              summary.class_scores, summary.seconds, summary.iterations,
              summary.converged ? ", converged" : "");

  // --- Persist / export ---------------------------------------------------
  if (!save_result.empty()) {
    status = session.SaveResult(save_result);
    if (!status.ok()) return Fail(status);
    std::printf("wrote result snapshot %s\n", save_result.c_str());
  }

  if (!output_prefix.empty()) {
    status = session.Export(output_prefix);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s_{instances,relations,classes}.tsv\n",
                output_prefix.c_str());
  } else {
    // No output prefix: print the instance alignment to stdout.
    status = session.WriteInstanceAlignment(std::cout);
    if (!status.ok()) return Fail(status);
  }
  return 0;
}
