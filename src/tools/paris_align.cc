// paris_align — align two RDF ontologies from the command line.
//
//   paris_align LEFT.nt RIGHT.ttl [options]
//
// Files ending in .ttl/.turtle are parsed as Turtle, everything else as
// N-Triples.
//
// Options:
//   --output PREFIX        write PREFIX_{instances,relations,classes}.tsv
//   --max-iterations N     fixpoint cap (default 10)
//   --theta X              bootstrap sub-relation probability (default 0.1)
//   --matcher M            identity | normalized | fuzzy  (default identity)
//   --threads N            worker threads for the instance pass, the
//                          relation pass, and index finalization
//   --negative-evidence    use Eq. (14) instead of Eq. (13)
//   --name-prior           seed iteration 1 with relation-name similarity
//   --stats                print ontology statistics and exit
//   --save-snapshot PATH   after loading, write a binary snapshot of both
//                          ontologies (term pool + packed indexes)
//   --load-snapshot PATH   load ontologies from a snapshot instead of
//                          parsing RDF files (positional args not needed)
//   --snapshot-load-mode M auto | mmap | stream (default auto): mmap maps
//                          the packed columns zero-copy, stream copies
//                          through the buffered reader, auto tries mmap
//                          and falls back to stream; also steers how
//                          --resume-from brings the result snapshot in
//   --save-result PATH     after the run, write a binary snapshot of the
//                          alignment result (equivalences, relation and
//                          class scores, iteration metadata)
//   --resume-from PATH     continue a previous run from its result
//                          snapshot instead of starting at iteration 1;
//                          the inputs and config must match the saved run
//                          (final tables are identical to an uninterrupted
//                          run)
//
// Exit status 0 on success, 1 on usage/load errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>
#include <string>

#include "core/result_snapshot.h"
#include "ontology/snapshot.h"
#include "paris/paris.h"

namespace {

struct CliOptions {
  std::string left_path;
  std::string right_path;
  std::string output_prefix;
  std::string save_snapshot;
  std::string load_snapshot;
  std::string save_result;
  std::string resume_from;
  paris::ontology::SnapshotLoadMode load_mode =
      paris::ontology::SnapshotLoadMode::kAuto;
  paris::core::AlignmentConfig config;
  std::string matcher = "identity";
  bool stats_only = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: paris_align LEFT.nt RIGHT.nt [--output PREFIX] "
               "[--max-iterations N] [--theta X] [--matcher identity|"
               "normalized|fuzzy] [--threads N] [--negative-evidence] "
               "[--name-prior] [--stats] [--save-snapshot PATH] "
               "[--load-snapshot PATH] "
               "[--snapshot-load-mode auto|mmap|stream] "
               "[--save-result PATH] [--resume-from PATH]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--output") {
      const char* v = next_value("--output");
      if (v == nullptr) return false;
      options->output_prefix = v;
    } else if (arg == "--max-iterations") {
      const char* v = next_value("--max-iterations");
      if (v == nullptr) return false;
      options->config.max_iterations = std::atoi(v);
    } else if (arg == "--theta") {
      const char* v = next_value("--theta");
      if (v == nullptr) return false;
      options->config.theta = std::atof(v);
    } else if (arg == "--matcher") {
      const char* v = next_value("--matcher");
      if (v == nullptr) return false;
      options->matcher = v;
    } else if (arg == "--threads") {
      const char* v = next_value("--threads");
      if (v == nullptr) return false;
      options->config.num_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--save-snapshot") {
      const char* v = next_value("--save-snapshot");
      if (v == nullptr) return false;
      options->save_snapshot = v;
    } else if (arg == "--load-snapshot") {
      const char* v = next_value("--load-snapshot");
      if (v == nullptr) return false;
      options->load_snapshot = v;
    } else if (arg == "--save-result") {
      const char* v = next_value("--save-result");
      if (v == nullptr) return false;
      options->save_result = v;
    } else if (arg == "--resume-from") {
      const char* v = next_value("--resume-from");
      if (v == nullptr) return false;
      options->resume_from = v;
    } else if (arg == "--snapshot-load-mode") {
      const char* v = next_value("--snapshot-load-mode");
      if (v == nullptr) return false;
      const std::string mode = v;
      if (mode == "auto") {
        options->load_mode = paris::ontology::SnapshotLoadMode::kAuto;
      } else if (mode == "mmap") {
        options->load_mode = paris::ontology::SnapshotLoadMode::kMmap;
      } else if (mode == "stream") {
        options->load_mode = paris::ontology::SnapshotLoadMode::kStream;
      } else {
        std::fprintf(stderr, "unknown snapshot load mode: %s\n", v);
        return false;
      }
    } else if (arg == "--negative-evidence") {
      options->config.use_negative_evidence = true;
    } else if (arg == "--name-prior") {
      options->config.use_relation_name_prior = true;
    } else if (arg == "--stats") {
      options->stats_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (!options->load_snapshot.empty()) {
    // The snapshot replaces the RDF inputs entirely.
    return positional.empty();
  }
  if (positional.size() != 2) return false;
  options->left_path = positional[0];
  options->right_path = positional[1];
  return true;
}

void PrintStats(const paris::ontology::Ontology& onto) {
  std::printf("%s: %zu instances, %zu classes, %zu relations, %zu triples\n",
              onto.name().c_str(), onto.instances().size(),
              onto.classes().size(), onto.num_relations(),
              onto.num_triples());
  std::printf("  relation functionalities (fun / fun⁻¹):\n");
  for (paris::rdf::RelId r = 1;
       r <= static_cast<paris::rdf::RelId>(onto.num_relations()); ++r) {
    std::printf("    %-32s %.3f / %.3f  (%zu facts)\n",
                onto.RelationName(r).c_str(), onto.Fun(r), onto.FunInverse(r),
                onto.store().PairCount(r));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }

  auto parse_file = [](const std::string& path,
                       paris::rdf::TripleSink* sink) {
    const bool turtle = path.size() >= 4 &&
                        (path.rfind(".ttl") == path.size() - 4 ||
                         (path.size() >= 7 &&
                          path.rfind(".turtle") == path.size() - 7));
    return turtle ? paris::rdf::TurtleParser::ParseFile(path, sink)
                  : paris::rdf::NTriplesParser::ParseFile(path, sink);
  };

  paris::rdf::TermPool pool;
  std::optional<paris::ontology::Ontology> left;
  std::optional<paris::ontology::Ontology> right;

  if (!options.load_snapshot.empty()) {
    auto snapshot = paris::ontology::LoadAlignmentSnapshot(
        options.load_snapshot, &pool, options.load_mode);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s: %s\n", options.load_snapshot.c_str(),
                   snapshot.status().ToString().c_str());
      return 1;
    }
    left.emplace(std::move(snapshot->left));
    right.emplace(std::move(snapshot->right));
  } else {
    // Worker pool for index finalization, scoped to the parse branch; the
    // aligner creates its own pool later from the same thread count.
    std::unique_ptr<paris::util::ThreadPool> finalize_pool;
    if (options.config.num_threads > 0) {
      finalize_pool = std::make_unique<paris::util::ThreadPool>(
          options.config.num_threads);
    }
    paris::ontology::OntologyBuilder left_builder(&pool, "left");
    auto status = parse_file(options.left_path, &left_builder);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", options.left_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    auto built_left = left_builder.Build(finalize_pool.get());
    if (!built_left.ok()) {
      std::fprintf(stderr, "left ontology: %s\n",
                   built_left.status().ToString().c_str());
      return 1;
    }
    left.emplace(std::move(built_left).value());
    paris::ontology::OntologyBuilder right_builder(&pool, "right");
    status = parse_file(options.right_path, &right_builder);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", options.right_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    auto built_right = right_builder.Build(finalize_pool.get());
    if (!built_right.ok()) {
      std::fprintf(stderr, "right ontology: %s\n",
                   built_right.status().ToString().c_str());
      return 1;
    }
    right.emplace(std::move(built_right).value());
  }

  if (!options.save_snapshot.empty()) {
    auto status = paris::ontology::SaveAlignmentSnapshot(
        options.save_snapshot, *left, *right);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", options.save_snapshot.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote snapshot %s\n", options.save_snapshot.c_str());
  }

  if (options.stats_only) {
    PrintStats(*left);
    PrintStats(*right);
    return 0;
  }

  paris::core::Aligner aligner(*left, *right, options.config);
  if (options.matcher == "normalized") {
    aligner.set_literal_matcher_factory(
        paris::core::NormalizingMatcherFactory());
  } else if (options.matcher == "fuzzy") {
    aligner.set_literal_matcher_factory(paris::core::FuzzyMatcherFactory());
  } else if (options.matcher != "identity") {
    std::fprintf(stderr, "unknown matcher: %s\n", options.matcher.c_str());
    return 1;
  }

  paris::core::AlignmentResult result;
  if (!options.resume_from.empty()) {
    auto checkpoint = paris::core::LoadAlignmentResult(
        options.resume_from, *left, *right, aligner.config(), options.matcher,
        options.load_mode);
    if (!checkpoint.ok()) {
      std::fprintf(stderr, "%s: %s\n", options.resume_from.c_str(),
                   checkpoint.status().ToString().c_str());
      return 1;
    }
    const size_t completed = checkpoint->iterations.size();
    result = aligner.Resume(std::move(checkpoint).value());
    std::printf("resumed after iteration %zu\n", completed);
  } else {
    result = aligner.Run();
  }
  std::printf("aligned %zu instances, %zu relation scores, %zu class "
              "scores in %.2fs (%zu iterations%s)\n",
              result.instances.num_left_aligned(), result.relations.size(),
              result.classes.entries().size(), result.seconds_total,
              result.iterations.size(),
              result.converged_at > 0 ? ", converged" : "");

  if (!options.save_result.empty()) {
    auto status = paris::core::SaveAlignmentResult(
        options.save_result, result, *left, *right, aligner.config(),
        options.matcher);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", options.save_result.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote result snapshot %s\n", options.save_result.c_str());
  }

  if (!options.output_prefix.empty()) {
    auto status = paris::core::WriteAlignmentFiles(result, *left, *right,
                                                   options.output_prefix);
    if (!status.ok()) {
      std::fprintf(stderr, "writing results: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s_{instances,relations,classes}.tsv\n",
                options.output_prefix.c_str());
  } else {
    // No output prefix: print the instance alignment to stdout.
    paris::core::WriteInstanceAlignment(result.instances, *left, *right,
                                        std::cout);
  }
  return 0;
}
