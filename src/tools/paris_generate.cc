// paris_generate — materialize the synthetic benchmark datasets as
// N-Triples files plus a gold-standard TSV, so the full pipeline can be
// driven from the command line:
//
//   paris_generate restaurant /tmp/rest          # writes three files
//   paris_align /tmp/rest_left.nt /tmp/rest_right.nt --output /tmp/run
//   join -t $'\t' <(sort /tmp/run_instances.tsv) <(sort /tmp/rest_gold.tsv)
//
// Profiles: person | restaurant | yago-dbpedia | yago-imdb
// Optional third argument: scale factor (default 1.0).
// Options:
//   --save-snapshot PATH   also write a binary snapshot of the generated
//                          pair, loadable via `paris_align --load-snapshot`
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ontology/export.h"
#include "ontology/snapshot.h"
#include "paris/paris.h"
#include "synth/profiles.h"

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--save-snapshot") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --save-snapshot\n");
        return 1;
      }
      snapshot_path = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    std::fprintf(stderr,
                 "usage: paris_generate person|restaurant|yago-dbpedia|"
                 "yago-imdb OUTPUT_PREFIX [scale] [--save-snapshot PATH]\n");
    return 1;
  }
  const std::string profile = positional[0];
  const std::string prefix = positional[1];
  paris::synth::ProfileOptions options;
  if (positional.size() > 2) options.scale = std::atof(positional[2].c_str());

  paris::util::StatusOr<paris::synth::OntologyPair> pair =
      paris::util::InvalidArgumentError("unknown profile: " + profile);
  if (profile == "person") {
    pair = paris::synth::MakeOaeiPersonPair(options);
  } else if (profile == "restaurant") {
    pair = paris::synth::MakeOaeiRestaurantPair(options);
  } else if (profile == "yago-dbpedia") {
    pair = paris::synth::MakeYagoDbpediaPair(options);
  } else if (profile == "yago-imdb") {
    pair = paris::synth::MakeYagoImdbPair(options);
  }
  if (!pair.ok()) {
    std::fprintf(stderr, "%s\n", pair.status().ToString().c_str());
    return 1;
  }

  auto status = paris::ontology::ExportToNTriplesFile(*pair->left,
                                                      prefix + "_left.nt");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = paris::ontology::ExportToNTriplesFile(*pair->right,
                                                 prefix + "_right.nt");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  if (!snapshot_path.empty()) {
    status = paris::ontology::SaveAlignmentSnapshot(snapshot_path, *pair->left,
                                                    *pair->right);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote snapshot %s\n", snapshot_path.c_str());
  }

  const std::string gold_path = prefix + "_gold.tsv";
  std::ofstream gold(gold_path);
  if (!gold) {
    std::fprintf(stderr, "cannot open %s\n", gold_path.c_str());
    return 1;
  }
  gold << "# gold instance pairs: left\tright\n";
  std::map<std::string, std::string> sorted;
  for (const auto& [l, r] : pair->gold.left_to_right()) {
    sorted.emplace(pair->left->TermName(l), pair->right->TermName(r));
  }
  for (const auto& [l, r] : sorted) gold << l << "\t" << r << "\n";

  std::printf(
      "%s: wrote %s_left.nt (%zu triples), %s_right.nt (%zu triples), "
      "%s (%zu gold pairs)\n",
      profile.c_str(), prefix.c_str(), pair->left->num_triples(),
      prefix.c_str(), pair->right->num_triples(), gold_path.c_str(),
      pair->gold.num_instance_pairs());
  return 0;
}
