#ifndef PARIS_UTIL_LOGGING_H_
#define PARIS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace paris::util {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: emits one formatted line to stderr if `level` is enabled.
void LogMessage(LogLevel level, const std::string& message);

// Stream-style log sink: `PARIS_LOG(kInfo) << "loaded " << n << " triples";`
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace paris::util

#define PARIS_LOG(severity) \
  ::paris::util::LogStream(::paris::util::LogLevel::severity)

#endif  // PARIS_UTIL_LOGGING_H_
