#include "util/thread_pool.h"

#include <algorithm>

namespace paris::util {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t total,
                             const std::function<void(size_t, size_t)>& fn) {
  if (total == 0) return;
  if (threads_.empty()) {
    fn(0, total);
    return;
  }
  // Over-decompose a little so stragglers balance out.
  const size_t num_chunks = std::min(total, threads_.size() * 4);
  const size_t chunk = (total + num_chunks - 1) / num_chunks;
  for (size_t begin = 0; begin < total; begin += chunk) {
    const size_t end = std::min(begin + chunk, total);
    Schedule([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace paris::util
