#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace paris::util {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
std::mutex g_log_mutex;

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kNone:
      return '?';
  }
  return '?';
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(level); }

LogLevel GetLogLevel() { return g_min_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level.load())) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&tt, &tm_buf);
  char time_str[16];
  std::strftime(time_str, sizeof(time_str), "%H:%M:%S", &tm_buf);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%c %s] %s\n", LevelChar(level), time_str,
               message.c_str());
}

}  // namespace paris::util
