#ifndef PARIS_UTIL_TIMER_H_
#define PARIS_UTIL_TIMER_H_

#include <chrono>

namespace paris::util {

// Simple wall-clock stopwatch for per-iteration timing reports.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace paris::util

#endif  // PARIS_UTIL_TIMER_H_
