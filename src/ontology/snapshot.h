#ifndef PARIS_ONTOLOGY_SNAPSHOT_H_
#define PARIS_ONTOLOGY_SNAPSHOT_H_

#include <string>

#include "ontology/ontology.h"
#include "rdf/term.h"
#include "util/status.h"

namespace paris::ontology {

// Ontology-level snapshot persistence on top of the storage-layer binary
// format (src/storage/snapshot.h). A snapshot file holds the shared term
// pool, both ontologies of an alignment run (name, packed triple store,
// class/instance partition, closed type and subclass indexes), and a
// checksum trailer. Functionality tables are recomputed on load — they are
// a deterministic function of the packed store.
//
// `SaveOntologySection` / `LoadOntologySection` (declared in ontology.h as
// friends) write one ontology; the functions below frame a whole file.

// Both ontologies must share one term pool (the normal alignment setup).
util::Status SaveAlignmentSnapshot(const std::string& path,
                                   const Ontology& left,
                                   const Ontology& right);

struct AlignmentSnapshot {
  Ontology left;
  Ontology right;
};

// Loads a snapshot into the (empty) `pool`. On failure the pool's contents
// are unspecified — use a fresh pool per attempt. Rejects files with a bad
// magic/version, structurally invalid sections, or a checksum mismatch
// (corruption / truncation).
util::StatusOr<AlignmentSnapshot> LoadAlignmentSnapshot(
    const std::string& path, rdf::TermPool* pool);

}  // namespace paris::ontology

#endif  // PARIS_ONTOLOGY_SNAPSHOT_H_
