#include "core/instance_align.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace paris::core {

namespace {

// Per-fact expansion of the second argument to its right-ontology
// equivalents, computed once per instance and shared between the positive-
// and negative-evidence passes. In negative-evidence mode `equivalents` is
// sorted by term id so the per-candidate-fact lookup in
// NegativeEvidenceFactor is a binary search instead of a linear scan.
struct ExpandedFact {
  rdf::RelId rel = rdf::kNullRel;  // r with r(x, y), signed
  std::vector<Candidate> equivalents;  // y' with Pr(y ≡ y') > 0
};

// Computes the positive-evidence score of Eq. (13) for every candidate x',
// returning candidate → ∏ (1 - Pr(r'⊆r)·fun⁻¹(r)·Pr(y≡y'))
//                        (1 - Pr(r⊆r')·fun⁻¹(r')·Pr(y≡y')).
void AccumulatePositiveEvidence(
    const std::vector<ExpandedFact>& facts, const ontology::Ontology& left,
    const ontology::Ontology& right, const RelationScores& rel_scores,
    const AlignmentConfig& config,
    std::unordered_map<rdf::TermId, double>* product) {
  const auto variant = config.functionality_variant;
  for (const ExpandedFact& ef : facts) {
    const double fun_inv_r =
        left.functionality().GlobalInverse(ef.rel, variant);
    for (const Candidate& y_eq : ef.equivalents) {
      const auto neighbor_facts = right.FactsAbout(y_eq.other);
      if (neighbor_facts.size() > config.max_neighbor_fanout) continue;
      for (const rdf::Fact& nf : neighbor_facts) {
        // Adjacency entry nf = (rt, x') of y' encodes statement rt(y', x'),
        // i.e. r'(x', y') with r' = rt⁻¹.
        const rdf::RelId r_prime = rdf::Inverse(nf.rel);
        const rdf::TermId x_prime = nf.other;
        if (!right.IsInstanceTerm(x_prime)) continue;
        const double p_sub_rl = rel_scores.SubRightLeft(r_prime, ef.rel);
        const double p_sub_lr = rel_scores.SubLeftRight(ef.rel, r_prime);
        if (p_sub_rl <= 0.0 && p_sub_lr <= 0.0) continue;
        const double fun_inv_rp =
            right.functionality().GlobalInverse(r_prime, variant);
        const double factor =
            (1.0 - p_sub_rl * fun_inv_r * y_eq.prob) *
            (1.0 - p_sub_lr * fun_inv_rp * y_eq.prob);
        if (factor >= 1.0) continue;
        auto [it, inserted] = product->emplace(x_prime, 1.0);
        it->second *= factor;
      }
    }
  }
}

// For the negative-evidence pass: each left relation's maximally contained
// counterpart on the right, in both containment directions. Built once per
// pass. Only scores strictly above θ qualify (§5.2 thresholding) — in
// particular the θ-uniform bootstrap table of iteration 1 contributes no
// negative evidence, which is what lets the fixpoint start at all: under a
// literal reading of Eq. (14), the product over *every* relation pair at
// score θ multiplies hundreds of small penalties and extinguishes every
// match before any real containment is known.
struct BestCounterparts {
  // Keyed by signed left relation id: (right relation r', score) with
  // score = max_{r'} Pr(r' ⊆ r) resp. max_{r'} Pr(r ⊆ r').
  std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>> right_sub_left;
  std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>> left_sub_right;

  static BestCounterparts Build(const RelationScores& scores, double theta) {
    BestCounterparts best;
    auto update = [](auto& map, rdf::RelId key, rdf::RelId value,
                     double score) {
      auto [it, inserted] = map.emplace(key, std::make_pair(value, score));
      if (!inserted && score > it->second.second) {
        it->second = {value, score};
      }
    };
    for (const RelationAlignmentEntry& e : scores.Entries()) {
      if (e.score <= theta) continue;
      if (e.sub_is_left) {
        // Pr(left e.sub ⊆ right e.super); also its inverted twin.
        update(best.left_sub_right, e.sub, e.super, e.score);
        update(best.left_sub_right, rdf::Inverse(e.sub),
               rdf::Inverse(e.super), e.score);
      } else {
        // Pr(right e.sub ⊆ left e.super).
        update(best.right_sub_left, e.super, e.sub, e.score);
        update(best.right_sub_left, rdf::Inverse(e.super),
               rdf::Inverse(e.sub), e.score);
      }
    }
    return best;
  }
};

// The negative-evidence multiplier of Eq. (14) for one candidate x'.
//
// Per the maximal-assignment principle of §5.2, each statement r(x, y) is
// checked against the *maximally contained* counterpart relation r' of r
// (one per containment direction) instead of every relation pair: the
// factor uses inner = ∏_{y' : r'(x', y')} (1 - Pr(y ≡ y')), which is 1 when
// x' has no r'-statements — decreasing Pr(x ≡ x') when x has relations that
// x' lacks, as §4.2 prescribes. Note the paper's Eq. (14) prints
// Pr(x ≡ x') inside the inner product; following its derivation from
// Eq. (6) it must be Pr(y ≡ y'), which is what we implement.
double NegativeEvidenceFactor(const std::vector<ExpandedFact>& facts,
                              const ontology::Ontology& left,
                              const ontology::Ontology& right,
                              const BestCounterparts& best,
                              const AlignmentConfig& config,
                              rdf::TermId x_prime) {
  const auto variant = config.functionality_variant;
  // One dictionary lookup for x'; each r' range below is a binary search
  // within this cached slice.
  const auto candidate_facts = right.FactsAbout(x_prime);

  auto inner_product = [&](const ExpandedFact& ef, rdf::RelId r_prime) {
    double inner = 1.0;
    for (const rdf::Fact& cf : FactsWithRelation(candidate_facts, r_prime)) {
      // `equivalents` is sorted by term id (see ComputeInstanceEquivalences).
      auto it = std::lower_bound(
          ef.equivalents.begin(), ef.equivalents.end(), cf.other,
          [](const Candidate& c, rdf::TermId t) { return c.other < t; });
      const double p =
          it != ef.equivalents.end() && it->other == cf.other ? it->prob : 0.0;
      inner *= (1.0 - p);
    }
    return inner;
  };

  double result = 1.0;
  for (const ExpandedFact& ef : facts) {
    auto rl = best.right_sub_left.find(ef.rel);
    if (rl != best.right_sub_left.end()) {
      const auto [r_prime, score] = rl->second;
      const double fun_r = left.functionality().Global(ef.rel, variant);
      result *= (1.0 - fun_r * score * inner_product(ef, r_prime));
    }
    auto lr = best.left_sub_right.find(ef.rel);
    if (lr != best.left_sub_right.end()) {
      const auto [r_prime, score] = lr->second;
      const double fun_rp = right.functionality().Global(r_prime, variant);
      result *= (1.0 - fun_rp * score * inner_product(ef, r_prime));
    }
  }
  return result;
}

}  // namespace

InstanceEquivalences ComputeInstanceEquivalences(
    const ontology::Ontology& left, const ontology::Ontology& right,
    const RelationScores& rel_scores, const DirectionalContext& l2r,
    const AlignmentConfig& config, util::ThreadPool* pool) {
  const std::vector<rdf::TermId>& instances = left.instances();
  std::vector<std::vector<Candidate>> results(instances.size());

  BestCounterparts best_counterparts;
  if (config.use_negative_evidence) {
    best_counterparts = BestCounterparts::Build(rel_scores, config.theta);
  }

  auto process_range = [&](size_t begin, size_t end) {
    std::vector<ExpandedFact> expanded;
    std::unordered_map<rdf::TermId, double> product;
    for (size_t i = begin; i < end; ++i) {
      const rdf::TermId x = instances[i];
      expanded.clear();
      product.clear();
      for (const rdf::Fact& f : left.FactsAbout(x)) {
        ExpandedFact ef;
        ef.rel = f.rel;
        l2r.AppendEquivalents(f.other, &ef.equivalents);
        if (!ef.equivalents.empty() || config.use_negative_evidence) {
          if (config.use_negative_evidence) {
            // The sort only feeds NegativeEvidenceFactor's binary search;
            // don't pay for it in the positive-only default mode.
            std::sort(ef.equivalents.begin(), ef.equivalents.end(),
                      [](const Candidate& a, const Candidate& b) {
                        return a.other < b.other;
                      });
          }
          expanded.push_back(std::move(ef));
        }
      }
      if (expanded.empty()) continue;

      AccumulatePositiveEvidence(expanded, left, right, rel_scores, config,
                                 &product);
      if (product.empty()) continue;

      std::vector<Candidate> candidates;
      candidates.reserve(product.size());
      for (const auto& [x_prime, prod] : product) {
        double score = 1.0 - prod;
        if (config.use_negative_evidence) {
          score *= NegativeEvidenceFactor(expanded, left, right,
                                          best_counterparts, config, x_prime);
        }
        if (score >= config.instance_threshold) {
          candidates.push_back(Candidate{x_prime, score});
        }
      }
      if (candidates.empty()) continue;
      auto better = [](const Candidate& a, const Candidate& b) {
        return a.prob != b.prob ? a.prob > b.prob : a.other < b.other;
      };
      std::sort(candidates.begin(), candidates.end(), better);
      if (candidates.size() > config.max_candidates_per_instance) {
        candidates.resize(config.max_candidates_per_instance);
      }
      results[i] = std::move(candidates);
    }
  };

  util::ForRange(pool, instances.size(), process_range);

  InstanceEquivalences equiv;
  for (size_t i = 0; i < instances.size(); ++i) {
    if (!results[i].empty()) equiv.Set(instances[i], std::move(results[i]));
  }
  equiv.Finalize();
  return equiv;
}

}  // namespace paris::core
