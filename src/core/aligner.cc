#include "core/aligner.h"

#include <string>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace paris::core {

namespace {

// Strips a namespace prefix ("y:wasBornIn" → "wasbornin") and normalizes.
std::string RelationNameKey(const ontology::Ontology& onto, rdf::RelId rel) {
  std::string name(onto.pool().lexical(onto.store().relation_name(rel)));
  const size_t colon = name.rfind(':');
  if (colon != std::string::npos) name = name.substr(colon + 1);
  return util::NormalizeAlnum(name);
}

// The §7 extension: seed the bootstrap table with relation-name similarity
// so that, e.g., "birthPlace" and "wasBornIn"... do not match, but "phone"
// and "phoneNumber" start above θ. Only shapes iteration 1.
RelationScores NamePriorBootstrap(const ontology::Ontology& left,
                                  const ontology::Ontology& right,
                                  const AlignmentConfig& config) {
  RelationScores scores = RelationScores::Bootstrap(config.theta);
  const rdf::RelId num_left = static_cast<rdf::RelId>(left.num_relations());
  const rdf::RelId num_right = static_cast<rdf::RelId>(right.num_relations());
  for (rdf::RelId l = 1; l <= num_left; ++l) {
    const std::string left_key = RelationNameKey(left, l);
    if (left_key.empty()) continue;
    for (rdf::RelId r = 1; r <= num_right; ++r) {
      const std::string right_key = RelationNameKey(right, r);
      if (right_key.empty()) continue;
      const double sim = util::EditSimilarity(left_key, right_key);
      const double prior = sim * config.name_prior_cap;
      if (prior > config.theta) scores.SetBootstrapPrior(l, r, prior);
    }
  }
  return scores;
}

}  // namespace

Aligner::Aligner(const ontology::Ontology& left,
                 const ontology::Ontology& right, AlignmentConfig config)
    : left_(left), right_(right), config_(config),
      matcher_factory_(IdentityMatcherFactory()) {
  if (config_.instance_threshold < 0.0) {
    config_.instance_threshold = config_.theta;
  }
}

AlignmentResult Aligner::Run() { return RunInternal(nullptr); }

AlignmentResult Aligner::Resume(AlignmentResult checkpoint) {
  return RunInternal(&checkpoint);
}

AlignmentResult Aligner::RunInternal(AlignmentResult* checkpoint) {
  util::WallTimer total_timer;
  AlignmentResult result;

  // Literal matchers, one per direction (§5.3).
  std::unique_ptr<LiteralMatcher> matcher_l2r = matcher_factory_();
  std::unique_ptr<LiteralMatcher> matcher_r2l = matcher_factory_();
  matcher_l2r->IndexTarget(right_);
  matcher_r2l->IndexTarget(left_);

  util::ThreadPool* pool = external_pool_;
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (pool == nullptr && config_.num_threads > 0) {
    owned_pool = std::make_unique<util::ThreadPool>(config_.num_threads);
    pool = owned_pool.get();
  }

  InstanceEquivalences previous;  // empty: first iteration has no equalities
  RelationScores rel_scores;
  int start_iteration = 1;
  bool finished = false;  // checkpoint already converged / exhausted the cap
  if (checkpoint != nullptr) {
    // Adopt the checkpoint's state exactly as iteration k left it; the loop
    // below continues at k+1 as if it had never stopped.
    start_iteration = static_cast<int>(checkpoint->iterations.size()) + 1;
    finished = checkpoint->converged_at > 0;
    result.iterations = std::move(checkpoint->iterations);
    result.converged_at = checkpoint->converged_at;
    previous = std::move(checkpoint->instances);
    rel_scores = std::move(checkpoint->relations);
  } else {
    previous.Finalize();
    rel_scores = config_.use_relation_name_prior
                     ? NamePriorBootstrap(left_, right_, config_)
                     : RelationScores::Bootstrap(config_.theta);
  }

  auto make_context = [&](bool left_to_right,
                          const InstanceEquivalences* equiv) {
    DirectionalContext ctx;
    ctx.source = left_to_right ? &left_ : &right_;
    ctx.target = left_to_right ? &right_ : &left_;
    ctx.matcher = left_to_right ? matcher_l2r.get() : matcher_r2l.get();
    ctx.equiv = equiv;
    ctx.source_is_left = left_to_right;
    ctx.use_full = config_.use_full_equalities;
    return ctx;
  };

  for (int iteration = start_iteration;
       !finished && iteration <= config_.max_iterations; ++iteration) {
    IterationRecord record;
    record.index = iteration;

    // Step 1: instance equivalences from the previous iteration's state.
    util::WallTimer timer;
    DirectionalContext l2r_prev = make_context(true, &previous);
    InstanceEquivalences current = ComputeInstanceEquivalences(
        left_, right_, rel_scores, l2r_prev, config_, pool);
    if (config_.dampening > 0.0 && iteration > 1) {
      // Progressively increasing dampening factor (§5.1's convergence
      // device): λ grows toward `dampening` as iterations accumulate.
      const double lambda =
          config_.dampening * (1.0 - 1.0 / static_cast<double>(iteration));
      current = BlendEquivalences(previous, current, lambda,
                                  config_.instance_threshold,
                                  config_.max_candidates_per_instance);
    }
    record.seconds_instances = timer.ElapsedSeconds();
    record.num_left_aligned = current.num_left_aligned();
    record.change_fraction = current.MaxAssignmentChangeFraction(previous);

    // Step 2: sub-relation scores from the fresh equivalences.
    timer.Restart();
    DirectionalContext l2r_cur = make_context(true, &current);
    DirectionalContext r2l_cur = make_context(false, &current);
    rel_scores = ComputeRelationScores(left_, right_, l2r_cur, r2l_cur,
                                       config_, pool);
    record.seconds_relations = timer.ElapsedSeconds();

    if (config_.record_history) {
      record.max_left = current.max_left();
      record.max_right = current.max_right();
      record.relations = rel_scores;
    }
    PARIS_LOG(kInfo) << "iteration " << iteration << ": aligned "
                     << record.num_left_aligned << " instances, change "
                     << record.change_fraction << ", "
                     << record.seconds_instances + record.seconds_relations
                     << "s";
    result.iterations.push_back(std::move(record));

    const bool keep_going =
        !iteration_observer_ || iteration_observer_(result.iterations.back());
    const bool converged =
        iteration > 1 &&
        result.iterations.back().change_fraction <
            config_.convergence_threshold;
    previous = std::move(current);
    if (converged) {
      result.converged_at = iteration;
      break;
    }
    // Cooperative stop: the observer declined to continue. Falls through to
    // the class pass so the partial result stays consistent and resumable.
    if (!keep_going) break;
  }

  // Final step: class alignment from the converged assignment (§4.3 —
  // computed only after the instance equivalences).
  util::WallTimer class_timer;
  DirectionalContext l2r_final = make_context(true, &previous);
  DirectionalContext r2l_final = make_context(false, &previous);
  result.classes = ComputeClassScores(left_, right_, l2r_final, r2l_final,
                                      config_, pool);
  result.seconds_classes = class_timer.ElapsedSeconds();

  result.instances = std::move(previous);
  result.relations = std::move(rel_scores);
  result.seconds_total = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace paris::core
