#ifndef PARIS_CORE_CLASS_ALIGN_H_
#define PARIS_CORE_CLASS_ALIGN_H_

#include <vector>

#include "core/config.h"
#include "core/direction.h"
#include "ontology/ontology.h"
#include "rdf/term.h"
#include "util/thread_pool.h"

namespace paris::core {

// One reportable sub-class alignment Pr(sub ⊆ super).
struct ClassAlignmentEntry {
  rdf::TermId sub = rdf::kNullTerm;
  rdf::TermId super = rdf::kNullTerm;
  double score = 0.0;
  // True if `sub` is a class of the left ontology.
  bool sub_is_left = true;
};

// All sub-class scores, both directions, with query helpers for the
// experiment harness.
class ClassScores {
 public:
  explicit ClassScores(std::vector<ClassAlignmentEntry> entries)
      : entries_(std::move(entries)) {}
  ClassScores() = default;

  const std::vector<ClassAlignmentEntry>& entries() const { return entries_; }

  // Entries with score ≥ threshold, one direction, sorted by descending
  // score.
  std::vector<ClassAlignmentEntry> AboveThreshold(double threshold,
                                                  bool sub_is_left) const;

  // Number of distinct sub-classes (one direction) with ≥1 assignment of
  // score ≥ threshold. This is the quantity of the paper's Figure 2.
  size_t NumAlignedSubClasses(double threshold, bool sub_is_left) const;

 private:
  std::vector<ClassAlignmentEntry> entries_;
};

// The final class-alignment step (§4.3, Eq. (17)), run once after the
// instance fixpoint converged:
//
//   Pr(c ⊆ d) = Σ_{x : type(x,c)} [1 - ∏_{y : type(y,d)} (1 - Pr(x ≡ y))]
//               ----------------------------------------------------------
//                                   #x : type(x, c)
//
// evaluated over at most `config.class_instance_sample` instances per class,
// against the final maximal assignment. Computed in both directions.
//
// With a pool, one task per (direction, class) fans across the workers —
// each task writes only its own shard, and the shards are merged in serial
// order, so the entry sequence (and therefore the result) is byte-identical
// across thread counts, like `ComputeRelationScores`.
ClassScores ComputeClassScores(const ontology::Ontology& left,
                               const ontology::Ontology& right,
                               const DirectionalContext& l2r,
                               const DirectionalContext& r2l,
                               const AlignmentConfig& config,
                               util::ThreadPool* pool = nullptr);

}  // namespace paris::core

#endif  // PARIS_CORE_CLASS_ALIGN_H_
