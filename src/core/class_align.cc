#include "core/class_align.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace paris::core {

namespace {

void ScoreOneDirection(const DirectionalContext& ctx,
                       const AlignmentConfig& config, bool sub_is_left,
                       std::vector<ClassAlignmentEntry>* out) {
  const ontology::Ontology& source = *ctx.source;
  const ontology::Ontology& target = *ctx.target;
  std::vector<Candidate> x_eq;
  std::unordered_map<rdf::TermId, double> per_class_miss;

  for (rdf::TermId c : source.classes()) {
    const auto members = source.InstancesOf(c);
    if (members.empty()) continue;
    const size_t sample =
        std::min(members.size(), config.class_instance_sample);
    std::unordered_map<rdf::TermId, double> expected_overlap;
    for (size_t i = 0; i < sample; ++i) {
      x_eq.clear();
      ctx.AppendEquivalents(members[i], &x_eq);
      if (x_eq.empty()) continue;
      // Per instance x: for each target class d,
      //   1 - ∏_{y ∈ eq(x), type(y, d)} (1 - Pr(x ≡ y)).
      per_class_miss.clear();
      for (const Candidate& cx : x_eq) {
        for (rdf::TermId d : target.ClassesOf(cx.other)) {
          auto [it, inserted] = per_class_miss.emplace(d, 1.0);
          it->second *= (1.0 - cx.prob);
        }
      }
      for (const auto& [d, miss] : per_class_miss) {
        expected_overlap[d] += 1.0 - miss;
      }
    }
    for (const auto& [d, overlap] : expected_overlap) {
      const double score = overlap / static_cast<double>(sample);
      if (score >= config.class_min_score) {
        out->push_back(ClassAlignmentEntry{c, d, score > 1.0 ? 1.0 : score,
                                           sub_is_left});
      }
    }
  }
}

}  // namespace

std::vector<ClassAlignmentEntry> ClassScores::AboveThreshold(
    double threshold, bool sub_is_left) const {
  std::vector<ClassAlignmentEntry> out;
  for (const auto& e : entries_) {
    if (e.sub_is_left == sub_is_left && e.score >= threshold) {
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ClassAlignmentEntry& a, const ClassAlignmentEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.sub != b.sub) return a.sub < b.sub;
              return a.super < b.super;
            });
  return out;
}

size_t ClassScores::NumAlignedSubClasses(double threshold,
                                         bool sub_is_left) const {
  std::unordered_set<rdf::TermId> seen;
  for (const auto& e : entries_) {
    if (e.sub_is_left == sub_is_left && e.score >= threshold) {
      seen.insert(e.sub);
    }
  }
  return seen.size();
}

ClassScores ComputeClassScores(const ontology::Ontology& /*left*/,
                               const ontology::Ontology& /*right*/,
                               const DirectionalContext& l2r,
                               const DirectionalContext& r2l,
                               const AlignmentConfig& config) {
  std::vector<ClassAlignmentEntry> entries;
  ScoreOneDirection(l2r, config, /*sub_is_left=*/true, &entries);
  ScoreOneDirection(r2l, config, /*sub_is_left=*/false, &entries);
  return ClassScores(std::move(entries));
}

}  // namespace paris::core
