#ifndef PARIS_CORE_RELATION_ALIGN_H_
#define PARIS_CORE_RELATION_ALIGN_H_

#include "core/config.h"
#include "core/direction.h"
#include "core/relation_scores.h"
#include "ontology/ontology.h"
#include "util/thread_pool.h"

namespace paris::core {

// One sub-relation pass (§4.2, Eq. (12)): for every relation r of each
// ontology, estimates Pr(r ⊆ r') against every relation r' of the other
// ontology as
//
//     Σ_{r(x,y)} [1 - ∏_{r'(x',y'), x≈x', y≈y'} (1 - Pr(x≡x')·Pr(y≡y'))]
//     ------------------------------------------------------------------
//     Σ_{r(x,y)} [1 - ∏_{x', y'} (1 - Pr(x≡x')·Pr(y≡y'))]
//
// Only the pairs of the previous maximal assignment feed the estimate
// (§5.2), at most `config.relation_pair_sample` pairs per relation.
// Inverse relations are covered by the Pr(r ⊆ r') = Pr(r⁻¹ ⊆ r'⁻¹)
// canonicalization in `RelationScores`.
//
// With a non-null `pool` the per-relation estimates run across the workers
// (each relation's accumulators are independent); the per-relation score
// lists are merged into the table serially in relation-id order, so the
// result — including hash-table iteration order — is identical to a serial
// run.
RelationScores ComputeRelationScores(const ontology::Ontology& left,
                                     const ontology::Ontology& right,
                                     const DirectionalContext& l2r,
                                     const DirectionalContext& r2l,
                                     const AlignmentConfig& config,
                                     util::ThreadPool* pool = nullptr);

}  // namespace paris::core

#endif  // PARIS_CORE_RELATION_ALIGN_H_
