#include "core/relation_scores.h"

#include <cassert>

namespace paris::core {

void RelationScores::SetSubLeftRight(rdf::RelId left, rdf::RelId right,
                                     double score) {
  assert(left > 0 && "store canonical positive sub id");
  assert(!bootstrap_);
  left_sub_right_[util::PackPair(Encode(left), Encode(right))] = score;
  entries_cache_valid_ = false;
}

void RelationScores::SetSubRightLeft(rdf::RelId right, rdf::RelId left,
                                     double score) {
  assert(right > 0 && "store canonical positive sub id");
  assert(!bootstrap_);
  right_sub_left_[util::PackPair(Encode(right), Encode(left))] = score;
  entries_cache_valid_ = false;
}

const std::vector<RelationAlignmentEntry>& RelationScores::Entries() const {
  if (entries_cache_valid_) return entries_cache_;
  entries_cache_.clear();
  entries_cache_.reserve(size());
  for (const auto& [key, score] : left_sub_right_) {
    entries_cache_.push_back(RelationAlignmentEntry{
        Decode(util::UnpackFirst(key)), Decode(util::UnpackSecond(key)), score,
        /*sub_is_left=*/true});
  }
  for (const auto& [key, score] : right_sub_left_) {
    entries_cache_.push_back(RelationAlignmentEntry{
        Decode(util::UnpackFirst(key)), Decode(util::UnpackSecond(key)), score,
        /*sub_is_left=*/false});
  }
  entries_cache_valid_ = true;
  return entries_cache_;
}

}  // namespace paris::core

namespace paris::core {

void RelationScores::SetBootstrapPrior(rdf::RelId left, rdf::RelId right,
                                       double prior) {
  assert(bootstrap_);
  // Canonicalize to a positive sub id on each side.
  if (left < 0) {
    left = -left;
    right = -right;
  }
  left_sub_right_[util::PackPair(Encode(left), Encode(right))] = prior;
  rdf::RelId r = right;
  rdf::RelId l = left;
  if (r < 0) {
    r = -r;
    l = -l;
  }
  right_sub_left_[util::PackPair(Encode(r), Encode(l))] = prior;
  entries_cache_valid_ = false;
}

}  // namespace paris::core
