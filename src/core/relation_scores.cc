#include "core/relation_scores.h"

#include <cassert>

namespace paris::core {

void RelationScores::SetSubLeftRight(rdf::RelId left, rdf::RelId right,
                                     double score) {
  assert(left > 0 && "store canonical positive sub id");
  assert(!bootstrap_);
  left_sub_right_[util::PackPair(Encode(left), Encode(right))] = score;
}

void RelationScores::SetSubRightLeft(rdf::RelId right, rdf::RelId left,
                                     double score) {
  assert(right > 0 && "store canonical positive sub id");
  assert(!bootstrap_);
  right_sub_left_[util::PackPair(Encode(right), Encode(left))] = score;
}

std::vector<RelationAlignmentEntry> RelationScores::Entries() const {
  std::vector<RelationAlignmentEntry> out;
  out.reserve(size());
  for (const auto& [key, score] : left_sub_right_) {
    out.push_back(RelationAlignmentEntry{
        Decode(util::UnpackFirst(key)), Decode(util::UnpackSecond(key)), score,
        /*sub_is_left=*/true});
  }
  for (const auto& [key, score] : right_sub_left_) {
    out.push_back(RelationAlignmentEntry{
        Decode(util::UnpackFirst(key)), Decode(util::UnpackSecond(key)), score,
        /*sub_is_left=*/false});
  }
  return out;
}

}  // namespace paris::core

namespace paris::core {

void RelationScores::SetBootstrapPrior(rdf::RelId left, rdf::RelId right,
                                       double prior) {
  assert(bootstrap_);
  // Canonicalize to a positive sub id on each side.
  if (left < 0) {
    left = -left;
    right = -right;
  }
  left_sub_right_[util::PackPair(Encode(left), Encode(right))] = prior;
  rdf::RelId r = right;
  rdf::RelId l = left;
  if (r < 0) {
    r = -r;
    l = -l;
  }
  right_sub_left_[util::PackPair(Encode(r), Encode(l))] = prior;
}

}  // namespace paris::core
