#ifndef PARIS_CORE_INSTANCE_ALIGN_H_
#define PARIS_CORE_INSTANCE_ALIGN_H_

#include "core/config.h"
#include "core/direction.h"
#include "core/equiv.h"
#include "core/relation_scores.h"
#include "ontology/ontology.h"
#include "util/thread_pool.h"

namespace paris::core {

// One instance-equivalence pass (§4.1/§4.2 of the paper).
//
// For every instance x of the left ontology, computes Pr(x ≡ x') for the
// right-ontology candidates x' reachable through shared evidence, using the
// neighborhood-walk optimization of §5.2: traverse the statements r(x, y),
// expand y to its known equivalents y', and visit the statements r'(x', y')
// of the right ontology. Probabilities follow Eq. (13) (positive evidence),
// optionally multiplied by the negative-evidence factor of Eq. (14).
//
// `l2r` must expand left terms to right equivalents using the *previous*
// iteration's store; `rel_scores` provides Pr(r ⊆ r') (θ-bootstrap table in
// the first iteration). The result is finalized (transpose + maximal
// assignments built).
InstanceEquivalences ComputeInstanceEquivalences(
    const ontology::Ontology& left, const ontology::Ontology& right,
    const RelationScores& rel_scores, const DirectionalContext& l2r,
    const AlignmentConfig& config, util::ThreadPool* pool);

}  // namespace paris::core

#endif  // PARIS_CORE_INSTANCE_ALIGN_H_
