#ifndef PARIS_CORE_INSTANCE_ALIGN_H_
#define PARIS_CORE_INSTANCE_ALIGN_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/direction.h"
#include "core/equiv.h"
#include "core/pass.h"
#include "core/relation_scores.h"
#include "ontology/ontology.h"

namespace paris::core {

// Per-worker scratch of the instance pass (defined in instance_align.cc),
// owned by the IterationContext and bound to `scratch_` in Prepare — the
// serial phase, per the ScratchSlots contract.
struct InstanceShardScratch;

// The instance-equivalence pass (§4.1/§4.2 of the paper), one pipeline
// stage per fixpoint iteration.
//
// For every instance x of the left ontology, computes Pr(x ≡ x') for the
// right-ontology candidates x' reachable through shared evidence, using the
// neighborhood-walk optimization of §5.2: traverse the statements r(x, y),
// expand y to its known equivalents y', and visit the statements r'(x', y')
// of the right ontology. Probabilities follow Eq. (13) (positive evidence),
// optionally multiplied by the negative-evidence factor of Eq. (14).
//
// Inputs (bound in Prepare): `ctx.previous` — the *previous* iteration's
// equivalence store — and `ctx.rel_scores` — Pr(r ⊆ r'), the θ-bootstrap
// table in the first iteration. Shards partition the left instance list;
// every shard writes only its instances' candidate slots, so the pass
// parallelizes without locks. Merge assembles the slots in instance order
// into `ctx.current` and finalizes it (transpose + maximal assignments),
// reproducing the exact store a serial whole-ontology sweep would build.
//
// This pass dominates wall time at YAGO scale, which is why cancellation
// is polled between its shards: SaveShard/LoadShard persist one shard's
// candidate lists so a cancelled pass resumes without recomputing them.
class InstancePass final : public Pass {
 public:
  const char* name() const override { return "instance"; }
  size_t Prepare(IterationContext& ctx) override;
  void RunShard(size_t shard, size_t worker, IterationContext& ctx) override;
  void Merge(IterationContext& ctx) override;
  void SaveShard(size_t shard, std::string* out) const override;
  bool LoadShard(size_t shard, std::string_view bytes,
                 IterationContext& ctx) override;

 private:
  // The negative-evidence pass's per-relation maximally contained
  // counterparts (§5.2), rebuilt in Prepare from the iteration's input
  // scores. Keyed by signed left relation id: (right relation r', score).
  struct BestCounterparts {
    std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>>
        right_sub_left;
    std::unordered_map<rdf::RelId, std::pair<rdf::RelId, double>>
        left_sub_right;
  };

  ShardLayout layout_;
  DirectionalContext l2r_;
  BestCounterparts best_;
  // Candidate lists, one slot per left instance, filled by RunShard (or
  // LoadShard) and drained by Merge. The outer vector keeps its capacity
  // across iterations.
  std::vector<std::vector<Candidate>> results_;
  // The per-worker scratch slots, bound in Prepare (RunShard must not call
  // ScratchSlots itself — it may allocate).
  std::vector<InstanceShardScratch>* scratch_ = nullptr;
  // Registered in Prepare when ctx.obs.metrics is set; bumped per shard
  // with the worker's slot.
  obs::MetricId entities_scored_ = 0;
  obs::MetricId entities_with_candidates_ = 0;
  obs::MetricId candidates_emitted_ = 0;
};

}  // namespace paris::core

#endif  // PARIS_CORE_INSTANCE_ALIGN_H_
