#include "core/relation_align.h"

#include <unordered_map>
#include <vector>

namespace paris::core {

namespace {

// Computes Pr(r ⊆ r') for one source relation r (positive id) against every
// relation r' of the target ontology, and stores entries above threshold via
// `store_score(r, r_prime, score)`.
template <typename StoreFn>
void ScoreOneRelation(rdf::RelId rel, const DirectionalContext& ctx,
                      const AlignmentConfig& config,
                      const StoreFn& store_score) {
  const ontology::Ontology& source = *ctx.source;
  const ontology::Ontology& target = *ctx.target;

  double denominator = 0.0;
  std::unordered_map<rdf::RelId, double> numerator;
  std::vector<Candidate> x_eq;
  std::vector<Candidate> y_eq;
  std::unordered_map<rdf::TermId, double> y_eq_probs;
  std::unordered_map<rdf::RelId, double> pair_products;

  source.store().ForEachPair(
      rel, config.relation_pair_sample, [&](rdf::TermId x, rdf::TermId y) {
        x_eq.clear();
        y_eq.clear();
        ctx.AppendEquivalents(x, &x_eq);
        if (x_eq.empty()) return;
        ctx.AppendEquivalents(y, &y_eq);
        if (y_eq.empty()) return;

        // Denominator term (Eq. 11): the probability that the pair (x, y)
        // has *some* counterpart pair.
        double miss_all = 1.0;
        for (const Candidate& cx : x_eq) {
          for (const Candidate& cy : y_eq) {
            miss_all *= (1.0 - cx.prob * cy.prob);
          }
        }
        denominator += 1.0 - miss_all;

        // Numerator terms (Eq. 10), one per target relation r' that links
        // some x' ≈ x to some y' ≈ y.
        y_eq_probs.clear();
        for (const Candidate& cy : y_eq) y_eq_probs[cy.other] = cy.prob;
        pair_products.clear();
        for (const Candidate& cx : x_eq) {
          for (const rdf::Fact& f : target.FactsAbout(cx.other)) {
            // f = (r', y') encodes the statement r'(x', y').
            auto it = y_eq_probs.find(f.other);
            if (it == y_eq_probs.end()) continue;
            auto [pit, inserted] = pair_products.emplace(f.rel, 1.0);
            pit->second *= (1.0 - cx.prob * it->second);
          }
        }
        for (const auto& [r_prime, product] : pair_products) {
          numerator[r_prime] += 1.0 - product;
        }
      });

  if (denominator <= 0.0) return;
  for (const auto& [r_prime, num] : numerator) {
    const double score = num / denominator;
    if (score >= config.relation_min_score) {
      store_score(rel, r_prime, score > 1.0 ? 1.0 : score);
    }
  }
}

}  // namespace

RelationScores ComputeRelationScores(const ontology::Ontology& left,
                                     const ontology::Ontology& right,
                                     const DirectionalContext& l2r,
                                     const DirectionalContext& r2l,
                                     const AlignmentConfig& config,
                                     util::ThreadPool* pool) {
  // One task per (direction, relation); task i scores left relation i+1 for
  // i < num_left, right relation i-num_left+1 otherwise. Every task writes
  // only its own shard, so the pass parallelizes without locks.
  const size_t num_left = left.num_relations();
  const size_t num_right = right.num_relations();
  const size_t total = num_left + num_right;
  struct Scored {
    rdf::RelId sub;
    rdf::RelId super;
    double score;
  };
  std::vector<std::vector<Scored>> shards(total);

  auto score_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const bool is_left = i < num_left;
      const rdf::RelId rel =
          static_cast<rdf::RelId>(is_left ? i + 1 : i - num_left + 1);
      ScoreOneRelation(rel, is_left ? l2r : r2l, config,
                       [&](rdf::RelId sub, rdf::RelId super, double score) {
                         shards[i].push_back(Scored{sub, super, score});
                       });
    }
  };
  util::ForRange(pool, total, score_range);

  // Deterministic merge: shard order reproduces the exact insertion sequence
  // of a serial run, so the tables (and their iteration order) are
  // byte-identical across thread counts.
  RelationScores scores;
  for (size_t i = 0; i < total; ++i) {
    for (const Scored& s : shards[i]) {
      if (i < num_left) {
        scores.SetSubLeftRight(s.sub, s.super, s.score);
      } else {
        scores.SetSubRightLeft(s.sub, s.super, s.score);
      }
    }
  }
  return scores;
}

}  // namespace paris::core
