#include "core/relation_align.h"

#include <unordered_map>
#include <vector>

namespace paris::core {

namespace {

// Computes Pr(r ⊆ r') for one source relation r (positive id) against every
// relation r' of the target ontology, and stores entries above threshold via
// `store_score(r, r_prime, score)`.
template <typename StoreFn>
void ScoreOneRelation(rdf::RelId rel, const DirectionalContext& ctx,
                      const AlignmentConfig& config,
                      const StoreFn& store_score) {
  const ontology::Ontology& source = *ctx.source;
  const ontology::Ontology& target = *ctx.target;

  double denominator = 0.0;
  std::unordered_map<rdf::RelId, double> numerator;
  std::vector<Candidate> x_eq;
  std::vector<Candidate> y_eq;
  std::unordered_map<rdf::TermId, double> y_eq_probs;
  std::unordered_map<rdf::RelId, double> pair_products;

  source.store().ForEachPair(
      rel, config.relation_pair_sample, [&](rdf::TermId x, rdf::TermId y) {
        x_eq.clear();
        y_eq.clear();
        ctx.AppendEquivalents(x, &x_eq);
        if (x_eq.empty()) return;
        ctx.AppendEquivalents(y, &y_eq);
        if (y_eq.empty()) return;

        // Denominator term (Eq. 11): the probability that the pair (x, y)
        // has *some* counterpart pair.
        double miss_all = 1.0;
        for (const Candidate& cx : x_eq) {
          for (const Candidate& cy : y_eq) {
            miss_all *= (1.0 - cx.prob * cy.prob);
          }
        }
        denominator += 1.0 - miss_all;

        // Numerator terms (Eq. 10), one per target relation r' that links
        // some x' ≈ x to some y' ≈ y.
        y_eq_probs.clear();
        for (const Candidate& cy : y_eq) y_eq_probs[cy.other] = cy.prob;
        pair_products.clear();
        for (const Candidate& cx : x_eq) {
          for (const rdf::Fact& f : target.FactsAbout(cx.other)) {
            // f = (r', y') encodes the statement r'(x', y').
            auto it = y_eq_probs.find(f.other);
            if (it == y_eq_probs.end()) continue;
            auto [pit, inserted] = pair_products.emplace(f.rel, 1.0);
            pit->second *= (1.0 - cx.prob * it->second);
          }
        }
        for (const auto& [r_prime, product] : pair_products) {
          numerator[r_prime] += 1.0 - product;
        }
      });

  if (denominator <= 0.0) return;
  for (const auto& [r_prime, num] : numerator) {
    const double score = num / denominator;
    if (score >= config.relation_min_score) {
      store_score(rel, r_prime, score > 1.0 ? 1.0 : score);
    }
  }
}

}  // namespace

RelationScores ComputeRelationScores(const ontology::Ontology& left,
                                     const ontology::Ontology& right,
                                     const DirectionalContext& l2r,
                                     const DirectionalContext& r2l,
                                     const AlignmentConfig& config) {
  RelationScores scores;
  const rdf::RelId num_left = static_cast<rdf::RelId>(left.num_relations());
  for (rdf::RelId r = 1; r <= num_left; ++r) {
    ScoreOneRelation(r, l2r, config,
                     [&](rdf::RelId sub, rdf::RelId super, double score) {
                       scores.SetSubLeftRight(sub, super, score);
                     });
  }
  const rdf::RelId num_right = static_cast<rdf::RelId>(right.num_relations());
  for (rdf::RelId r = 1; r <= num_right; ++r) {
    ScoreOneRelation(r, r2l, config,
                     [&](rdf::RelId sub, rdf::RelId super, double score) {
                       scores.SetSubRightLeft(sub, super, score);
                     });
  }
  return scores;
}

}  // namespace paris::core
