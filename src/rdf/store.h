#ifndef PARIS_RDF_STORE_H_
#define PARIS_RDF_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace paris::rdf {

// Per-ontology fact storage, optimized for the access pattern of the PARIS
// alignment passes (§5.2 of the paper): given an entity, iterate every
// statement it participates in (in either argument position), and given a
// relation, iterate its (first, second) pairs.
//
// Usage: `Add()` triples, then `Finalize()` exactly once; all read accessors
// require a finalized store. `Finalize()` sorts adjacency lists and removes
// duplicate statements (an RDFS ontology is a *set* of triples).
class TripleStore {
 public:
  explicit TripleStore(TermPool* pool) : pool_(pool) {}
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  TermPool& pool() const { return *pool_; }

  // Registers (or finds) a relation by its name term. Returns its positive id.
  RelId InternRelation(TermId name);
  std::optional<RelId> FindRelation(TermId name) const;

  // Adds statement rel(subject, object). `rel` may be negative (inverse), in
  // which case the statement BaseRel(rel)(object, subject) is recorded.
  void Add(TermId subject, RelId rel, TermId object);

  // Deduplicates, sorts adjacency, and builds per-relation pair lists.
  void Finalize();
  bool finalized() const { return finalized_; }

  // ---- Read API (requires Finalize()) ----

  // Every statement `t` participates in, as (rel, other) with rel(t, other).
  // Sorted by (rel, other). Empty span if `t` is unknown to this ontology.
  std::span<const Fact> FactsAbout(TermId t) const;

  // The objects y with rel(t, y); `rel` may be inverse. Sorted.
  std::vector<TermId> ObjectsOf(TermId t, RelId rel) const;

  // True if rel(s, o) is a statement of this store (rel may be inverse).
  bool Contains(TermId s, RelId rel, TermId o) const;

  // Number of registered relations; valid positive ids are [1, count].
  size_t num_relations() const { return rel_names_.size(); }
  TermId relation_name(RelId rel) const {
    return rel_names_[static_cast<size_t>(BaseRel(rel)) - 1];
  }

  // Human-readable relation name; inverse relations get a "^-1" suffix.
  std::string RelationDebugName(RelId rel) const;

  // (first, second) pairs of `rel`, base direction only. For an inverse id
  // the caller should swap the pair components; `ForEachPair` does this.
  const std::vector<TermPair>& PairsOf(RelId rel) const {
    return pairs_[static_cast<size_t>(BaseRel(rel)) - 1];
  }

  // Invokes fn(x, y) for every pair of `rel` (handling inversion), stopping
  // after `limit` pairs (0 = no limit).
  void ForEachPair(RelId rel, size_t limit,
                   const std::function<void(TermId, TermId)>& fn) const;

  // Number of statements of `rel` (same for the inverse).
  size_t PairCount(RelId rel) const { return PairsOf(rel).size(); }

  // Every term that appears in some statement of this store, in first-seen
  // order.
  const std::vector<TermId>& terms() const { return terms_; }

  bool ContainsTerm(TermId t) const {
    return local_index_.find(t) != local_index_.end();
  }

  // Total number of distinct statements (not counting inverses twice).
  size_t num_triples() const { return num_triples_; }

 private:
  uint32_t LocalIndex(TermId t);

  TermPool* pool_;
  bool finalized_ = false;
  size_t num_triples_ = 0;

  // Relation registry.
  std::vector<TermId> rel_names_;
  std::unordered_map<TermId, RelId> rel_index_;

  // Adjacency, keyed by dense local term index.
  std::unordered_map<TermId, uint32_t> local_index_;
  std::vector<TermId> terms_;
  std::vector<std::vector<Fact>> adjacency_;

  // Per positive relation: its (first, second) pairs. Built by Finalize().
  std::vector<std::vector<TermPair>> pairs_;
};

}  // namespace paris::rdf

#endif  // PARIS_RDF_STORE_H_
