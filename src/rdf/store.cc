#include "rdf/store.h"

#include <algorithm>
#include <cassert>

namespace paris::rdf {

RelId TripleStore::InternRelation(TermId name) {
  auto it = rel_index_.find(name);
  if (it != rel_index_.end()) return it->second;
  rel_names_.push_back(name);
  const RelId id = static_cast<RelId>(rel_names_.size());
  rel_index_.emplace(name, id);
  return id;
}

std::optional<RelId> TripleStore::FindRelation(TermId name) const {
  auto it = rel_index_.find(name);
  if (it == rel_index_.end()) return std::nullopt;
  return it->second;
}

uint32_t TripleStore::LocalIndex(TermId t) {
  auto [it, inserted] =
      local_index_.emplace(t, static_cast<uint32_t>(terms_.size()));
  if (inserted) {
    terms_.push_back(t);
    adjacency_.emplace_back();
  }
  return it->second;
}

void TripleStore::Add(TermId subject, RelId rel, TermId object) {
  assert(!finalized_ && "Add() after Finalize()");
  assert(rel != kNullRel);
  if (rel < 0) {
    Add(object, -rel, subject);
    return;
  }
  assert(static_cast<size_t>(rel) <= rel_names_.size() &&
         "relation not registered");
  adjacency_[LocalIndex(subject)].push_back(Fact{rel, object});
  adjacency_[LocalIndex(object)].push_back(Fact{Inverse(rel), subject});
}

void TripleStore::Finalize() {
  assert(!finalized_);
  auto fact_less = [](const Fact& a, const Fact& b) {
    return a.rel != b.rel ? a.rel < b.rel : a.other < b.other;
  };
  num_triples_ = 0;
  for (auto& facts : adjacency_) {
    std::sort(facts.begin(), facts.end(), fact_less);
    facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
    facts.shrink_to_fit();
  }
  // Build per-relation pair lists from the deduplicated base-direction facts.
  pairs_.assign(rel_names_.size(), {});
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    const TermId subject = terms_[i];
    for (const Fact& f : adjacency_[i]) {
      if (f.rel > 0) {
        pairs_[static_cast<size_t>(f.rel) - 1].push_back(
            TermPair{subject, f.other});
        ++num_triples_;
      }
    }
  }
  finalized_ = true;
}

std::span<const Fact> TripleStore::FactsAbout(TermId t) const {
  assert(finalized_);
  auto it = local_index_.find(t);
  if (it == local_index_.end()) return {};
  const auto& facts = adjacency_[it->second];
  return {facts.data(), facts.size()};
}

std::vector<TermId> TripleStore::ObjectsOf(TermId t, RelId rel) const {
  std::vector<TermId> out;
  for (const Fact& f : FactsAbout(t)) {
    if (f.rel == rel) out.push_back(f.other);
  }
  return out;
}

bool TripleStore::Contains(TermId s, RelId rel, TermId o) const {
  for (const Fact& f : FactsAbout(s)) {
    if (f.rel == rel && f.other == o) return true;
  }
  return false;
}

std::string TripleStore::RelationDebugName(RelId rel) const {
  std::string name(pool_->lexical(relation_name(rel)));
  if (IsInverse(rel)) name += "^-1";
  return name;
}

void TripleStore::ForEachPair(
    RelId rel, size_t limit,
    const std::function<void(TermId, TermId)>& fn) const {
  const auto& pairs = PairsOf(rel);
  const size_t n =
      limit == 0 ? pairs.size() : std::min(limit, pairs.size());
  const bool inverted = IsInverse(rel);
  for (size_t i = 0; i < n; ++i) {
    if (inverted) {
      fn(pairs[i].second, pairs[i].first);
    } else {
      fn(pairs[i].first, pairs[i].second);
    }
  }
}

}  // namespace paris::rdf
