#ifndef PARIS_STORAGE_SNAPSHOT_H_
#define PARIS_STORAGE_SNAPSHOT_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace paris::storage {

// Versioned binary snapshot format (see src/storage/README.md):
//
//   [8-byte magic "PARISNP\n"] [u32 format version]
//   ... sections written by the layers above ...
//   [u64 FNV-1a checksum of every byte after the magic]
//
// Scalars are little-endian; POD rows (facts, pairs, offsets) are written
// raw, matching the in-memory layout of this library's fixed-width structs.
// The checksum trailer detects both corruption and truncation: a reader
// hashes as it consumes and compares against the stored trailer.

inline constexpr char kSnapshotMagic[8] = {'P', 'A', 'R', 'I',
                                           'S', 'N', 'P', '\n'};
inline constexpr uint32_t kSnapshotVersion = 1;

// Streams sections to `out`, maintaining a running FNV-1a 64 hash of every
// byte written (the magic is excluded by writing it before construction —
// `WriteSnapshotHeader` handles this).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream& out) : out_(out) {}

  void WriteBytes(const void* data, size_t size);
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteString(std::string_view s);  // u64 length + bytes

  template <typename T>
  void WritePodSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    WritePodSpan(std::span<const T>(v));
  }

  uint64_t checksum() const { return checksum_; }
  bool ok() const;

 private:
  std::ostream& out_;
  uint64_t checksum_ = 14695981039346656037ull;  // FNV-1a offset basis
};

// Mirrors SnapshotWriter. Read failures (EOF, oversized counts) latch a
// fail state instead of returning per-call statuses; callers check `ok()`
// after a batch of reads. Values read after a failure are zero.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {}

  bool ReadBytes(void* data, size_t size);
  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  std::string ReadString(uint64_t max_size = kMaxString);

  // Reads a length-prefixed POD array. Grows the vector in bounded chunks so
  // a corrupt length field on a truncated file fails fast at the first short
  // read instead of attempting one giant allocation up front.
  template <typename T>
  bool ReadPodVector(std::vector<T>* v, uint64_t max_elements = kMaxElements) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = ReadU64();
    if (n > max_elements) {
      failed_ = true;
      return false;
    }
    v->clear();
    constexpr uint64_t kChunk = 1 << 16;
    for (uint64_t done = 0; done < n;) {
      const uint64_t take = std::min(kChunk, n - done);
      const size_t old_size = v->size();
      v->resize(old_size + take);
      if (!ReadBytes(v->data() + old_size, take * sizeof(T))) return false;
      done += take;
    }
    return ok();
  }

  // Reads the trailing checksum *without* hashing it, for comparison against
  // `checksum()` of everything consumed so far.
  uint64_t ReadChecksumTrailer();

  uint64_t checksum() const { return checksum_; }
  bool ok() const { return !failed_; }
  void MarkFailed() { failed_ = true; }

 private:
  static constexpr uint64_t kMaxString = 1ull << 32;
  static constexpr uint64_t kMaxElements = 1ull << 40;

  std::istream& in_;
  uint64_t checksum_ = 14695981039346656037ull;
  bool failed_ = false;
};

// Writes / verifies the magic + format version framing.
void WriteSnapshotHeader(SnapshotWriter& writer, std::ostream& raw);
util::Status CheckSnapshotHeader(SnapshotReader& reader, std::istream& raw);

// ---- Term pool section ----

// count, then per term: kind byte + lexical form.
void SaveTermPool(const rdf::TermPool& pool, SnapshotWriter& writer);

// Re-interns every term in id order; `pool` must be empty so the dense ids
// reproduce exactly.
util::Status LoadTermPool(SnapshotReader& reader, rdf::TermPool* pool);

}  // namespace paris::storage

#endif  // PARIS_STORAGE_SNAPSHOT_H_
