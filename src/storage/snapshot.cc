#include "storage/snapshot.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

namespace paris::storage {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t HashBytes(uint64_t h, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t FnvHash(const void* data, size_t size) {
  return HashBytes(14695981039346656037ull, data, size);
}

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

void SnapshotWriter::WriteBytes(const void* data, size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  checksum_ = HashBytes(checksum_, data, size);
  offset_ += size;
}

void SnapshotWriter::AlignTo8() {
  static constexpr char kZeros[8] = {};
  const size_t pad = (8 - offset_ % 8) % 8;
  if (pad != 0) WriteBytes(kZeros, pad);
}

void SnapshotWriter::WriteU8(uint8_t v) { WriteBytes(&v, 1); }

void SnapshotWriter::WriteU32(uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  WriteBytes(b, 4);
}

void SnapshotWriter::WriteU64(uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  WriteBytes(b, 8);
}

void SnapshotWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

bool SnapshotWriter::ok() const { return static_cast<bool>(out_); }

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

bool SnapshotReader::ReadBytes(void* data, size_t size) {
  if (failed_) return false;
  if (memory_backed()) {
    if (size > size_ - pos_) {
      failed_ = true;
      std::memset(data, 0, size);
      return false;
    }
    // No hashing: the memory-backed caller verified the whole-file checksum
    // before constructing the reader.
    std::memcpy(data, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<size_t>(in_->gcount()) != size) {
    failed_ = true;
    std::memset(data, 0, size);
    return false;
  }
  checksum_ = HashBytes(checksum_, data, size);
  pos_ += size;
  return true;
}

void SnapshotReader::SkipAlignmentPadding() {
  const size_t pad = (8 - pos_ % 8) % 8;
  if (pad == 0) return;
  unsigned char scratch[8];
  ReadBytes(scratch, pad);
}

uint8_t SnapshotReader::ReadU8() {
  uint8_t v = 0;
  ReadBytes(&v, 1);
  return v;
}

uint32_t SnapshotReader::ReadU32() {
  unsigned char b[4] = {};
  ReadBytes(b, 4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return v;
}

uint64_t SnapshotReader::ReadU64() {
  unsigned char b[8] = {};
  ReadBytes(b, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

std::string SnapshotReader::ReadString(uint64_t max_size) {
  const uint64_t n = ReadU64();
  if (n > max_size) {
    failed_ = true;
    return {};
  }
  std::string s;
  constexpr uint64_t kChunk = 1 << 16;
  for (uint64_t done = 0; done < n;) {
    const uint64_t take = std::min(kChunk, n - done);
    const size_t old_size = s.size();
    s.resize(old_size + take);
    if (!ReadBytes(s.data() + old_size, take)) return {};
    done += take;
  }
  return s;
}

uint64_t SnapshotReader::ReadChecksumTrailer() {
  // Streaming mode only: the mmap path verifies the whole-file trailer with
  // FnvHash before constructing its reader.
  if (failed_ || memory_backed()) {
    failed_ = true;
    return 0;
  }
  unsigned char b[8] = {};
  in_->read(reinterpret_cast<char*>(b), 8);
  if (in_->gcount() != 8) {
    failed_ = true;
    return 0;
  }
  pos_ += 8;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

void WriteSnapshotHeader(SnapshotWriter& writer, std::ostream& raw) {
  raw.write(kSnapshotMagic, sizeof(kSnapshotMagic));  // excluded from hash
  writer.WriteU32(kSnapshotVersion);
}

util::Status CheckSnapshotHeader(SnapshotReader& reader, std::istream& raw) {
  char magic[sizeof(kSnapshotMagic)] = {};
  raw.read(magic, sizeof(magic));
  if (raw.gcount() != sizeof(magic) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    reader.MarkFailed();
    return util::InvalidArgumentError("not a PARIS snapshot (bad magic)");
  }
  const uint32_t version = reader.ReadU32();
  if (!reader.ok()) {
    return util::InvalidArgumentError("truncated snapshot header");
  }
  if (version != kSnapshotVersion) {
    reader.MarkFailed();
    return util::InvalidArgumentError("unsupported snapshot version " +
                                      std::to_string(version));
  }
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Term pool
// ---------------------------------------------------------------------------

void SaveTermPool(const rdf::TermPool& pool, SnapshotWriter& writer) {
  writer.WriteU64(pool.size());
  for (rdf::TermId id = 0; id < pool.size(); ++id) {
    writer.WriteU8(static_cast<uint8_t>(pool.kind(id)));
    writer.WriteString(pool.lexical(id));
  }
}

util::Status LoadTermPool(SnapshotReader& reader, rdf::TermPool* pool) {
  if (pool->size() != 0) {
    return util::FailedPreconditionError(
        "snapshot must be loaded into an empty term pool");
  }
  const uint64_t count = reader.ReadU64();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    const uint8_t kind = reader.ReadU8();
    if (kind > static_cast<uint8_t>(rdf::TermKind::kLiteral)) {
      reader.MarkFailed();
      break;
    }
    const std::string lexical = reader.ReadString();
    if (!reader.ok()) break;
    const rdf::TermId id =
        pool->Intern(lexical, static_cast<rdf::TermKind>(kind));
    if (id != i) {
      // A duplicate (lexical, kind) row — the bytes are corrupt.
      reader.MarkFailed();
      break;
    }
  }
  if (!reader.ok()) {
    return util::InvalidArgumentError("corrupt term pool section");
  }
  return util::OkStatus();
}

}  // namespace paris::storage
