#include "storage/columnar_index.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>

namespace paris::storage {

namespace {

constexpr bool FactLess(const rdf::Fact& a, const rdf::Fact& b) {
  return a.rel != b.rel ? a.rel < b.rel : a.other < b.other;
}

constexpr bool PairLess(const rdf::TermPair& a, const rdf::TermPair& b) {
  return a.first != b.first ? a.first < b.first : a.second < b.second;
}

}  // namespace

ColumnarIndex ColumnarIndex::Build(std::span<const rdf::TermId> terms,
                                   size_t num_relations,
                                   std::vector<Entry>&& entries) {
  ColumnarIndex index;
  const size_t num_terms = terms.size();

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.owner != b.owner) return a.owner < b.owner;
              if (a.rel != b.rel) return a.rel < b.rel;
              return a.other < b.other;
            });
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

  // SPO: counting pass + prefix sum, then fill both columns in one sweep
  // (the entries are already in CSR order).
  index.offsets_.assign(num_terms + 1, 0);
  index.facts_.reserve(entries.size());
  index.objects_.reserve(entries.size());
  for (const Entry& e : entries) {
    assert(e.owner < num_terms);
    ++index.offsets_[e.owner + 1];
    index.facts_.push_back(rdf::Fact{e.rel, e.other});
    index.objects_.push_back(e.other);
  }
  for (size_t i = 1; i <= num_terms; ++i) {
    index.offsets_[i] += index.offsets_[i - 1];
  }

  // POS: bucket the base-direction statements by relation, then sort each
  // relation's range by (first, second).
  index.pair_offsets_.assign(num_relations + 1, 0);
  for (const Entry& e : entries) {
    if (e.rel > 0) {
      assert(static_cast<size_t>(e.rel) <= num_relations);
      ++index.pair_offsets_[static_cast<size_t>(e.rel)];
    }
  }
  for (size_t r = 1; r <= num_relations; ++r) {
    index.pair_offsets_[r] += index.pair_offsets_[r - 1];
  }
  index.pairs_.resize(index.pair_offsets_[num_relations]);
  std::vector<uint64_t> cursor(index.pair_offsets_.begin(),
                               index.pair_offsets_.end() - 1);
  for (const Entry& e : entries) {
    if (e.rel > 0) {
      index.pairs_[cursor[static_cast<size_t>(e.rel) - 1]++] =
          rdf::TermPair{terms[e.owner], e.other};
    }
  }
  for (size_t r = 1; r <= num_relations; ++r) {
    std::sort(index.pairs_.begin() +
                  static_cast<ptrdiff_t>(index.pair_offsets_[r - 1]),
              index.pairs_.begin() +
                  static_cast<ptrdiff_t>(index.pair_offsets_[r]),
              PairLess);
  }
  return index;
}

bool ColumnarIndex::FromColumns(std::vector<uint64_t> offsets,
                                std::vector<rdf::Fact> facts,
                                std::vector<uint64_t> pair_offsets,
                                std::vector<rdf::TermPair> pairs,
                                ColumnarIndex* out) {
  if (offsets.empty() || pair_offsets.empty()) return false;
  if (offsets.front() != 0 || offsets.back() != facts.size()) return false;
  if (pair_offsets.front() != 0 || pair_offsets.back() != pairs.size()) {
    return false;
  }
  if (!std::is_sorted(offsets.begin(), offsets.end())) return false;
  if (!std::is_sorted(pair_offsets.begin(), pair_offsets.end())) return false;
  // Each term's adjacency slice must be strictly increasing by (rel, other);
  // a violation means the bytes don't describe a valid index.
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    for (uint64_t i = offsets[t] + 1; i < offsets[t + 1]; ++i) {
      if (!FactLess(facts[i - 1], facts[i])) return false;
    }
  }
  for (const rdf::Fact& f : facts) {
    // Reject INT32_MIN before BaseRel: negating it is signed overflow.
    if (f.rel == rdf::kNullRel ||
        f.rel == std::numeric_limits<rdf::RelId>::min() ||
        static_cast<size_t>(rdf::BaseRel(f.rel)) >= pair_offsets.size()) {
      return false;
    }
  }
  for (size_t r = 1; r < pair_offsets.size(); ++r) {
    for (uint64_t i = pair_offsets[r - 1] + 1; i < pair_offsets[r]; ++i) {
      if (!PairLess(pairs[i - 1], pairs[i])) return false;
    }
  }

  out->offsets_ = std::move(offsets);
  out->facts_ = std::move(facts);
  out->pair_offsets_ = std::move(pair_offsets);
  out->pairs_ = std::move(pairs);
  out->objects_.resize(out->facts_.size());
  for (size_t i = 0; i < out->facts_.size(); ++i) {
    out->objects_[i] = out->facts_[i].other;
  }
  return true;
}

std::span<const rdf::Fact> ColumnarIndex::FactsWith(uint32_t local,
                                                    rdf::RelId rel) const {
  const auto facts = FactsAbout(local);
  auto lo = std::lower_bound(
      facts.begin(), facts.end(), rel,
      [](const rdf::Fact& f, rdf::RelId r) { return f.rel < r; });
  auto hi = std::upper_bound(
      lo, facts.end(), rel,
      [](rdf::RelId r, const rdf::Fact& f) { return r < f.rel; });
  return facts.subspan(static_cast<size_t>(lo - facts.begin()),
                       static_cast<size_t>(hi - lo));
}

std::span<const rdf::TermId> ColumnarIndex::ObjectsOf(uint32_t local,
                                                      rdf::RelId rel) const {
  const auto with_rel = FactsWith(local, rel);
  if (with_rel.empty()) return {};
  // Map the fact slice onto the parallel object column.
  const size_t begin = static_cast<size_t>(with_rel.data() - facts_.data());
  return {objects_.data() + begin, with_rel.size()};
}

bool ColumnarIndex::Contains(uint32_t local, rdf::RelId rel,
                             rdf::TermId other) const {
  const auto objects = ObjectsOf(local, rel);
  return std::binary_search(objects.begin(), objects.end(), other);
}

}  // namespace paris::storage
