#include "storage/columnar_index.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>
#include <utility>

#include "util/thread_pool.h"

namespace paris::storage {

namespace {

constexpr bool FactLess(const rdf::Fact& a, const rdf::Fact& b) {
  return a.rel != b.rel ? a.rel < b.rel : a.other < b.other;
}

constexpr bool PairLess(const rdf::TermPair& a, const rdf::TermPair& b) {
  return a.first != b.first ? a.first < b.first : a.second < b.second;
}

constexpr bool EntryLess(const ColumnarIndex::Entry& a,
                         const ColumnarIndex::Entry& b) {
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.other < b.other;
}

// Number of input ranges the parallel counting-sort passes split their scan
// into. Per-range histograms cost range_count × bucket_count counters, so
// the fanout is deliberately modest; below kParallelSortMinEntries the
// serial scan wins and the parallel path is skipped entirely.
size_t SortRangeCount(const util::ThreadPool* pool) {
  // A constructed-but-empty pool (ThreadPool(0) = "run inline") counts as
  // one range, like no pool at all.
  if (pool == nullptr || pool->num_threads() == 0) return 1;
  return std::min<size_t>(pool->num_threads(), 8);
}
constexpr size_t kParallelSortMinEntries = 1 << 15;

// Parallel stable counting sort: scans `total` input items in `ranges`
// fixed ranges, building one histogram per range via `count(range_begin,
// range_end, histogram)`, prefix-combines the histograms into per-range
// write cursors (range r's cursor for bucket b starts where range r-1's
// items for b end), and scatters via `scatter(range_begin, range_end,
// cursors)`. Because cursors are pre-computed from fixed range boundaries,
// every item lands exactly where the serial scan would have put it — the
// output is byte-identical, in-bucket order included — while both the
// histogram and the scatter pass run across the pool.
// `prepare(total_out)` runs once between the two passes — after the bucket
// offsets are known, before any scatter — so the caller can size the output
// array.
template <typename CountFn, typename PrepareFn, typename ScatterFn>
std::vector<uint64_t> ParallelCountingSort(util::ThreadPool* pool,
                                           size_t total, size_t num_buckets,
                                           const CountFn& count,
                                           const PrepareFn& prepare,
                                           const ScatterFn& scatter) {
  // Each extra range costs a num_buckets-sized histogram; capping the
  // fanout at total/num_buckets bounds the transient counters by ~8 bytes
  // per input item (half the entry array) even when the bucket space is as
  // large as the term dictionary.
  size_t ranges = total >= kParallelSortMinEntries ? SortRangeCount(pool) : 1;
  if (num_buckets > 0) {
    ranges = std::min(ranges, std::max<size_t>(1, total / num_buckets));
  }
  const size_t chunk = (total + ranges - 1) / ranges;
  const auto range_bounds = [&](size_t r) {
    const size_t begin = r * chunk;
    return std::pair<size_t, size_t>{std::min(begin, total),
                                     std::min(begin + chunk, total)};
  };

  // Per-range histograms (bucket counts), then offsets via prefix sums.
  std::vector<std::vector<uint64_t>> counts(ranges);
  util::ForRange(pool, ranges, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      counts[r].assign(num_buckets, 0);
      const auto [lo, hi] = range_bounds(r);
      count(lo, hi, counts[r].data());
    }
  });
  std::vector<uint64_t> offsets(num_buckets + 1, 0);
  for (size_t r = 0; r < ranges; ++r) {
    for (size_t b = 0; b < num_buckets; ++b) {
      offsets[b + 1] += counts[r][b];
    }
  }
  for (size_t b = 1; b <= num_buckets; ++b) offsets[b] += offsets[b - 1];
  prepare(offsets[num_buckets]);

  // Rewrite each range's counts into its starting cursors: bucket start +
  // everything earlier ranges contribute to that bucket.
  for (size_t b = 0; b < num_buckets; ++b) {
    uint64_t cursor = offsets[b];
    for (size_t r = 0; r < ranges; ++r) {
      const uint64_t n = counts[r][b];
      counts[r][b] = cursor;
      cursor += n;
    }
  }
  util::ForRange(pool, ranges, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      const auto [lo, hi] = range_bounds(r);
      scatter(lo, hi, counts[r].data());
    }
  });
  return offsets;
}

}  // namespace

ColumnarIndex ColumnarIndex::Build(std::span<const rdf::TermId> terms,
                                   size_t num_relations,
                                   std::vector<Entry>&& entries,
                                   util::ThreadPool* pool, obs::Hooks hooks) {
  ColumnarIndex index;
  const size_t num_terms = terms.size();
  // Build runs on the calling thread (the inner loops fan across the pool
  // but block here), so every sub-phase span lands on the main slot.
  const size_t obs_slot = hooks.main_slot();
  obs::Span build_span(hooks.trace, obs_slot, "io", "index.build");

  // Bucket the entries by owner with a counting sort (owners are dense local
  // indexes), then sort each owner's slice by (rel, other) — sharded across
  // the pool. The concatenation equals one global (owner, rel, other) sort,
  // so the packed result is independent of the thread count. Histogram and
  // scatter both fan across the pool (per-range counts, prefix-combined
  // cursors); the stable per-range cursors reproduce the serial scatter's
  // in-bucket order exactly.
  std::vector<Entry> sorted;
  obs::Span bucket_span(hooks.trace, obs_slot, "io", "index.bucket_by_owner");
  const std::vector<uint64_t> bucket_offsets = ParallelCountingSort(
      pool, entries.size(), num_terms,
      [&](size_t lo, size_t hi, uint64_t* histogram) {
        for (size_t i = lo; i < hi; ++i) {
          assert(entries[i].owner < num_terms);
          ++histogram[entries[i].owner];
        }
      },
      [&](uint64_t total) { sorted.resize(total); },
      [&](size_t lo, size_t hi, uint64_t* cursors) {
        for (size_t i = lo; i < hi; ++i) {
          sorted[cursors[entries[i].owner]++] = entries[i];
        }
      });
  entries = {};
  bucket_span.End();

  // Per-term slice sort + dedup (a store is a *set* of statements;
  // duplicates always share an owner, so in-slice dedup is global dedup).
  obs::Span dedup_span(hooks.trace, obs_slot, "io", "index.sort_dedup");
  std::vector<uint64_t> kept(num_terms, 0);
  util::ForRange(pool, num_terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      auto lo = sorted.begin() + static_cast<ptrdiff_t>(bucket_offsets[t]);
      auto hi = sorted.begin() + static_cast<ptrdiff_t>(bucket_offsets[t + 1]);
      std::sort(lo, hi, EntryLess);
      kept[t] = static_cast<uint64_t>(std::unique(lo, hi) - lo);
    }
  });

  // SPO offsets: prefix sums over the deduplicated slice lengths.
  std::vector<uint64_t> offsets(num_terms + 1, 0);
  for (size_t t = 0; t < num_terms; ++t) {
    offsets[t + 1] = offsets[t] + kept[t];
  }
  const size_t num_facts = offsets[num_terms];
  dedup_span.End();

  // Fill both adjacency columns, sharded by term.
  obs::Span fill_span(hooks.trace, obs_slot, "io", "index.pack_columns");
  std::vector<rdf::Fact> facts(num_facts);
  std::vector<rdf::TermId> objects(num_facts);
  util::ForRange(pool, num_terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const Entry* src = sorted.data() + bucket_offsets[t];
      const size_t dst = offsets[t];
      for (uint64_t i = 0; i < kept[t]; ++i) {
        facts[dst + i] = rdf::Fact{src[i].rel, src[i].other};
        objects[dst + i] = src[i].other;
      }
    }
  });

  fill_span.End();

  // POS: bucket the base-direction statements by relation (counting-sort
  // histogram + scatter over fixed term ranges, both across the pool; the
  // returned offsets equal the serial pass's `pair_offsets` exactly), then
  // sort each relation's range by (first, second) — sharded by relation.
  obs::Span pairs_span(hooks.trace, obs_slot, "io", "index.pack_pairs");
  std::vector<rdf::TermPair> pairs;
  std::vector<uint64_t> pair_offsets = ParallelCountingSort(
      pool, num_terms, num_relations,
      [&](size_t lo, size_t hi, uint64_t* histogram) {
        for (size_t t = lo; t < hi; ++t) {
          const Entry* src = sorted.data() + bucket_offsets[t];
          for (uint64_t i = 0; i < kept[t]; ++i) {
            if (src[i].rel > 0) {
              assert(static_cast<size_t>(src[i].rel) <= num_relations);
              ++histogram[static_cast<size_t>(src[i].rel) - 1];
            }
          }
        }
      },
      [&](uint64_t total) { pairs.resize(total); },
      [&](size_t lo, size_t hi, uint64_t* cursors) {
        for (size_t t = lo; t < hi; ++t) {
          const Entry* src = sorted.data() + bucket_offsets[t];
          for (uint64_t i = 0; i < kept[t]; ++i) {
            if (src[i].rel > 0) {
              pairs[cursors[static_cast<size_t>(src[i].rel) - 1]++] =
                  rdf::TermPair{terms[src[i].owner], src[i].other};
            }
          }
        }
      });
  util::ForRange(pool, num_relations, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      std::sort(pairs.begin() + static_cast<ptrdiff_t>(pair_offsets[r]),
                pairs.begin() + static_cast<ptrdiff_t>(pair_offsets[r + 1]),
                PairLess);
    }
  });
  pairs_span.End();

  index.offsets_ = Column<uint64_t>::FromOwned(std::move(offsets));
  index.facts_ = Column<rdf::Fact>::FromOwned(std::move(facts));
  index.objects_ = Column<rdf::TermId>::FromOwned(std::move(objects));
  index.pair_offsets_ = Column<uint64_t>::FromOwned(std::move(pair_offsets));
  index.pairs_ = Column<rdf::TermPair>::FromOwned(std::move(pairs));
  return index;
}

bool ColumnarIndex::Validate(std::span<const uint64_t> offsets,
                             std::span<const rdf::Fact> facts,
                             std::span<const uint64_t> pair_offsets,
                             std::span<const rdf::TermPair> pairs) {
  if (offsets.empty() || pair_offsets.empty()) return false;
  if (offsets.front() != 0 || offsets.back() != facts.size()) return false;
  if (pair_offsets.front() != 0 || pair_offsets.back() != pairs.size()) {
    return false;
  }
  if (!std::is_sorted(offsets.begin(), offsets.end())) return false;
  if (!std::is_sorted(pair_offsets.begin(), pair_offsets.end())) return false;
  // Each term's adjacency slice must be strictly increasing by (rel, other);
  // a violation means the bytes don't describe a valid index.
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    for (uint64_t i = offsets[t] + 1; i < offsets[t + 1]; ++i) {
      if (!FactLess(facts[i - 1], facts[i])) return false;
    }
  }
  for (const rdf::Fact& f : facts) {
    // Reject INT32_MIN before BaseRel: negating it is signed overflow.
    if (f.rel == rdf::kNullRel ||
        f.rel == std::numeric_limits<rdf::RelId>::min() ||
        static_cast<size_t>(rdf::BaseRel(f.rel)) >= pair_offsets.size()) {
      return false;
    }
  }
  for (size_t r = 1; r < pair_offsets.size(); ++r) {
    for (uint64_t i = pair_offsets[r - 1] + 1; i < pair_offsets[r]; ++i) {
      if (!PairLess(pairs[i - 1], pairs[i])) return false;
    }
  }
  return true;
}

void ColumnarIndex::RebuildObjectColumn() {
  std::vector<rdf::TermId> objects(facts_.size());
  for (size_t i = 0; i < facts_.size(); ++i) {
    objects[i] = facts_[i].other;
  }
  objects_ = Column<rdf::TermId>::FromOwned(std::move(objects));
}

bool ColumnarIndex::FromColumns(std::vector<uint64_t> offsets,
                                std::vector<rdf::Fact> facts,
                                std::vector<uint64_t> pair_offsets,
                                std::vector<rdf::TermPair> pairs,
                                ColumnarIndex* out) {
  return FromColumns(Column<uint64_t>::FromOwned(std::move(offsets)),
                     Column<rdf::Fact>::FromOwned(std::move(facts)),
                     Column<uint64_t>::FromOwned(std::move(pair_offsets)),
                     Column<rdf::TermPair>::FromOwned(std::move(pairs)),
                     /*keep_alive=*/nullptr, out);
}

bool ColumnarIndex::FromColumns(Column<uint64_t> offsets,
                                Column<rdf::Fact> facts,
                                Column<uint64_t> pair_offsets,
                                Column<rdf::TermPair> pairs,
                                std::shared_ptr<const void> keep_alive,
                                ColumnarIndex* out) {
  if (!Validate(offsets.span(), facts.span(), pair_offsets.span(),
                pairs.span())) {
    return false;
  }
  out->offsets_ = std::move(offsets);
  out->facts_ = std::move(facts);
  out->pair_offsets_ = std::move(pair_offsets);
  out->pairs_ = std::move(pairs);
  out->keep_alive_ = std::move(keep_alive);
  out->RebuildObjectColumn();
  return true;
}

std::span<const rdf::Fact> ColumnarIndex::FactsWith(uint32_t local,
                                                    rdf::RelId rel) const {
  const auto facts = FactsAbout(local);
  auto lo = std::lower_bound(
      facts.begin(), facts.end(), rel,
      [](const rdf::Fact& f, rdf::RelId r) { return f.rel < r; });
  auto hi = std::upper_bound(
      lo, facts.end(), rel,
      [](rdf::RelId r, const rdf::Fact& f) { return r < f.rel; });
  return facts.subspan(static_cast<size_t>(lo - facts.begin()),
                       static_cast<size_t>(hi - lo));
}

std::span<const rdf::TermId> ColumnarIndex::ObjectsOf(uint32_t local,
                                                      rdf::RelId rel) const {
  const auto with_rel = FactsWith(local, rel);
  if (with_rel.empty()) return {};
  // Map the fact slice onto the parallel object column.
  const size_t begin = static_cast<size_t>(with_rel.data() - facts_.data());
  return {objects_.data() + begin, with_rel.size()};
}

bool ColumnarIndex::Contains(uint32_t local, rdf::RelId rel,
                             rdf::TermId other) const {
  const auto objects = ObjectsOf(local, rel);
  return std::binary_search(objects.begin(), objects.end(), other);
}

}  // namespace paris::storage
