#include "storage/columnar_index.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>
#include <utility>

#include "util/thread_pool.h"

namespace paris::storage {

namespace {

constexpr bool FactLess(const rdf::Fact& a, const rdf::Fact& b) {
  return a.rel != b.rel ? a.rel < b.rel : a.other < b.other;
}

constexpr bool PairLess(const rdf::TermPair& a, const rdf::TermPair& b) {
  return a.first != b.first ? a.first < b.first : a.second < b.second;
}

constexpr bool EntryLess(const ColumnarIndex::Entry& a,
                         const ColumnarIndex::Entry& b) {
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.other < b.other;
}

}  // namespace

ColumnarIndex ColumnarIndex::Build(std::span<const rdf::TermId> terms,
                                   size_t num_relations,
                                   std::vector<Entry>&& entries,
                                   util::ThreadPool* pool) {
  ColumnarIndex index;
  const size_t num_terms = terms.size();

  // Bucket the entries by owner with a counting sort (owners are dense local
  // indexes), then sort each owner's slice by (rel, other) — sharded across
  // the pool. The concatenation equals one global (owner, rel, other) sort,
  // so the packed result is independent of the thread count.
  std::vector<uint64_t> bucket_offsets(num_terms + 1, 0);
  for (const Entry& e : entries) {
    assert(e.owner < num_terms);
    ++bucket_offsets[e.owner + 1];
  }
  for (size_t i = 1; i <= num_terms; ++i) {
    bucket_offsets[i] += bucket_offsets[i - 1];
  }
  std::vector<Entry> sorted(entries.size());
  {
    std::vector<uint64_t> cursor(bucket_offsets.begin(),
                                 bucket_offsets.end() - 1);
    for (const Entry& e : entries) {
      sorted[cursor[e.owner]++] = e;
    }
  }
  entries = {};

  // Per-term slice sort + dedup (a store is a *set* of statements;
  // duplicates always share an owner, so in-slice dedup is global dedup).
  std::vector<uint64_t> kept(num_terms, 0);
  util::ForRange(pool, num_terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      auto lo = sorted.begin() + static_cast<ptrdiff_t>(bucket_offsets[t]);
      auto hi = sorted.begin() + static_cast<ptrdiff_t>(bucket_offsets[t + 1]);
      std::sort(lo, hi, EntryLess);
      kept[t] = static_cast<uint64_t>(std::unique(lo, hi) - lo);
    }
  });

  // SPO offsets: prefix sums over the deduplicated slice lengths.
  std::vector<uint64_t> offsets(num_terms + 1, 0);
  for (size_t t = 0; t < num_terms; ++t) {
    offsets[t + 1] = offsets[t] + kept[t];
  }
  const size_t num_facts = offsets[num_terms];

  // Fill both adjacency columns, sharded by term.
  std::vector<rdf::Fact> facts(num_facts);
  std::vector<rdf::TermId> objects(num_facts);
  util::ForRange(pool, num_terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const Entry* src = sorted.data() + bucket_offsets[t];
      const size_t dst = offsets[t];
      for (uint64_t i = 0; i < kept[t]; ++i) {
        facts[dst + i] = rdf::Fact{src[i].rel, src[i].other};
        objects[dst + i] = src[i].other;
      }
    }
  });

  // POS: bucket the base-direction statements by relation, then sort each
  // relation's range by (first, second) — sharded by relation.
  std::vector<uint64_t> pair_offsets(num_relations + 1, 0);
  for (size_t t = 0; t < num_terms; ++t) {
    const Entry* src = sorted.data() + bucket_offsets[t];
    for (uint64_t i = 0; i < kept[t]; ++i) {
      if (src[i].rel > 0) {
        assert(static_cast<size_t>(src[i].rel) <= num_relations);
        ++pair_offsets[static_cast<size_t>(src[i].rel)];
      }
    }
  }
  for (size_t r = 1; r <= num_relations; ++r) {
    pair_offsets[r] += pair_offsets[r - 1];
  }
  std::vector<rdf::TermPair> pairs(pair_offsets[num_relations]);
  {
    std::vector<uint64_t> cursor(pair_offsets.begin(), pair_offsets.end() - 1);
    for (size_t t = 0; t < num_terms; ++t) {
      const Entry* src = sorted.data() + bucket_offsets[t];
      for (uint64_t i = 0; i < kept[t]; ++i) {
        if (src[i].rel > 0) {
          pairs[cursor[static_cast<size_t>(src[i].rel) - 1]++] =
              rdf::TermPair{terms[src[i].owner], src[i].other};
        }
      }
    }
  }
  util::ForRange(pool, num_relations, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      std::sort(pairs.begin() + static_cast<ptrdiff_t>(pair_offsets[r]),
                pairs.begin() + static_cast<ptrdiff_t>(pair_offsets[r + 1]),
                PairLess);
    }
  });

  index.offsets_ = Column<uint64_t>::FromOwned(std::move(offsets));
  index.facts_ = Column<rdf::Fact>::FromOwned(std::move(facts));
  index.objects_ = Column<rdf::TermId>::FromOwned(std::move(objects));
  index.pair_offsets_ = Column<uint64_t>::FromOwned(std::move(pair_offsets));
  index.pairs_ = Column<rdf::TermPair>::FromOwned(std::move(pairs));
  return index;
}

bool ColumnarIndex::Validate(std::span<const uint64_t> offsets,
                             std::span<const rdf::Fact> facts,
                             std::span<const uint64_t> pair_offsets,
                             std::span<const rdf::TermPair> pairs) {
  if (offsets.empty() || pair_offsets.empty()) return false;
  if (offsets.front() != 0 || offsets.back() != facts.size()) return false;
  if (pair_offsets.front() != 0 || pair_offsets.back() != pairs.size()) {
    return false;
  }
  if (!std::is_sorted(offsets.begin(), offsets.end())) return false;
  if (!std::is_sorted(pair_offsets.begin(), pair_offsets.end())) return false;
  // Each term's adjacency slice must be strictly increasing by (rel, other);
  // a violation means the bytes don't describe a valid index.
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    for (uint64_t i = offsets[t] + 1; i < offsets[t + 1]; ++i) {
      if (!FactLess(facts[i - 1], facts[i])) return false;
    }
  }
  for (const rdf::Fact& f : facts) {
    // Reject INT32_MIN before BaseRel: negating it is signed overflow.
    if (f.rel == rdf::kNullRel ||
        f.rel == std::numeric_limits<rdf::RelId>::min() ||
        static_cast<size_t>(rdf::BaseRel(f.rel)) >= pair_offsets.size()) {
      return false;
    }
  }
  for (size_t r = 1; r < pair_offsets.size(); ++r) {
    for (uint64_t i = pair_offsets[r - 1] + 1; i < pair_offsets[r]; ++i) {
      if (!PairLess(pairs[i - 1], pairs[i])) return false;
    }
  }
  return true;
}

void ColumnarIndex::RebuildObjectColumn() {
  std::vector<rdf::TermId> objects(facts_.size());
  for (size_t i = 0; i < facts_.size(); ++i) {
    objects[i] = facts_[i].other;
  }
  objects_ = Column<rdf::TermId>::FromOwned(std::move(objects));
}

bool ColumnarIndex::FromColumns(std::vector<uint64_t> offsets,
                                std::vector<rdf::Fact> facts,
                                std::vector<uint64_t> pair_offsets,
                                std::vector<rdf::TermPair> pairs,
                                ColumnarIndex* out) {
  return FromColumns(Column<uint64_t>::FromOwned(std::move(offsets)),
                     Column<rdf::Fact>::FromOwned(std::move(facts)),
                     Column<uint64_t>::FromOwned(std::move(pair_offsets)),
                     Column<rdf::TermPair>::FromOwned(std::move(pairs)),
                     /*keep_alive=*/nullptr, out);
}

bool ColumnarIndex::FromColumns(Column<uint64_t> offsets,
                                Column<rdf::Fact> facts,
                                Column<uint64_t> pair_offsets,
                                Column<rdf::TermPair> pairs,
                                std::shared_ptr<const void> keep_alive,
                                ColumnarIndex* out) {
  if (!Validate(offsets.span(), facts.span(), pair_offsets.span(),
                pairs.span())) {
    return false;
  }
  out->offsets_ = std::move(offsets);
  out->facts_ = std::move(facts);
  out->pair_offsets_ = std::move(pair_offsets);
  out->pairs_ = std::move(pairs);
  out->keep_alive_ = std::move(keep_alive);
  out->RebuildObjectColumn();
  return true;
}

std::span<const rdf::Fact> ColumnarIndex::FactsWith(uint32_t local,
                                                    rdf::RelId rel) const {
  const auto facts = FactsAbout(local);
  auto lo = std::lower_bound(
      facts.begin(), facts.end(), rel,
      [](const rdf::Fact& f, rdf::RelId r) { return f.rel < r; });
  auto hi = std::upper_bound(
      lo, facts.end(), rel,
      [](rdf::RelId r, const rdf::Fact& f) { return r < f.rel; });
  return facts.subspan(static_cast<size_t>(lo - facts.begin()),
                       static_cast<size_t>(hi - lo));
}

std::span<const rdf::TermId> ColumnarIndex::ObjectsOf(uint32_t local,
                                                      rdf::RelId rel) const {
  const auto with_rel = FactsWith(local, rel);
  if (with_rel.empty()) return {};
  // Map the fact slice onto the parallel object column.
  const size_t begin = static_cast<size_t>(with_rel.data() - facts_.data());
  return {objects_.data() + begin, with_rel.size()};
}

bool ColumnarIndex::Contains(uint32_t local, rdf::RelId rel,
                             rdf::TermId other) const {
  const auto objects = ObjectsOf(local, rel);
  return std::binary_search(objects.begin(), objects.end(), other);
}

}  // namespace paris::storage
