#!/usr/bin/env python3
"""Gate CI on bench_parallel wall-time regressions.

Compares a fresh bench_parallel JSON against the committed baseline file
(BENCH_parallel.json) phase by phase and fails when any phase regressed by
more than --max-regression (default 25%).

Wall times are only comparable on like hardware, so the baseline file holds
one baseline *per machine shape*:

    {"bench": "bench_parallel",
     "baselines": [ {<run with "hardware_threads": 1>},
                    {<run with "hardware_threads": 4>}, ... ]}

The gate compares the current run against the baseline whose
hardware_threads matches the current machine; when none matches, the
comparison is skipped (exit 0) with instructions for arming the gate on
that shape — run with --add-baseline to merge the fresh run into the file
and commit it. A legacy single-run baseline file (the run object at the top
level) is still accepted.

Phases below --min-seconds in the matching baseline are skipped: at
sub-hundredth-of-a-second scale, scheduler jitter dwarfs any real change.
Phases present only in the current run (new benchmarks without a baseline
yet) are reported but never fail.
"""

import argparse
import json
import sys


def load_baselines(doc):
    """Returns the list of per-shape baseline runs in `doc`."""
    if "baselines" in doc:
        return doc["baselines"]
    # Legacy format: the whole document is one run.
    return [doc]


# "*_fraction" phases report a ratio, not a wall time, and are roughly
# hardware-independent — so they are gated against these absolute caps (on
# every machine shape, baseline or not) instead of the per-shape wall-time
# comparison. checkpoint_overhead_fraction is the acceptance bar for
# periodic background checkpointing: under 5% on top of a plain run.
# converged_iteration_fraction is the semi-naive acceptance bar: an
# iteration past the fixpoint lock costs at most 1/5 of an exhaustive one.
# delta_realign_fraction is the incremental-update bar: merging a ~1% delta
# and re-aligning costs at most 1/3 of an equivalent cold run.
# probe_directory_vs_binary_fraction is the TriIndex access-path bar: the
# per-term relation directory (best-of-N) must never be slower than the old
# binary search over the full adjacency span it replaced.
OVERHEAD_CAPS = {
    "checkpoint_overhead_fraction": 0.05,
    "converged_iteration_fraction": 0.20,
    "delta_realign_fraction": 1.0 / 3.0,
    "probe_directory_vs_binary_fraction": 1.0,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_parallel.json")
    parser.add_argument("current", help="freshly generated bench JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per phase (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--parallel-max-regression",
        type=float,
        default=None,
        help="allowed fractional slowdown for phases recorded with "
        "threads > 1 (default: same as --max-regression); multi-threaded "
        "phases average away scheduler jitter over more work, so they can "
        "be held to a tighter bar than single-thread microphases",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.02,
        help="skip phases whose baseline is below this (noise floor)",
    )
    parser.add_argument(
        "--add-baseline",
        action="store_true",
        help="instead of comparing, merge the current run into the baseline "
        "file as the entry for its hardware_threads value (replacing any "
        "existing entry for that shape) and exit",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    cur_threads = current.get("hardware_threads")
    baselines = load_baselines(baseline_doc)

    if args.add_baseline:
        kept = [b for b in baselines if b.get("hardware_threads") != cur_threads]
        kept.append(current)
        kept.sort(key=lambda b: b.get("hardware_threads") or 0)
        bench_name = baseline_doc.get("bench") or current.get(
            "bench", "bench_parallel"
        )
        merged = {"bench": bench_name, "baselines": kept}
        with open(args.baseline, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
        print(
            f"OK: recorded baseline for hardware_threads={cur_threads} in "
            f"{args.baseline} ({len(kept)} shape(s) total); commit the file "
            f"to arm the gate on this machine shape."
        )
        return 0

    overhead_failures = [
        (p["phase"], p["seconds"], OVERHEAD_CAPS[p["phase"]])
        for p in current["phases"]
        if p["phase"] in OVERHEAD_CAPS and p["seconds"] > OVERHEAD_CAPS[p["phase"]]
    ]
    if overhead_failures:
        for phase, value, cap in overhead_failures:
            print(f"FAIL: {phase} = {value:.4f} exceeds its {cap:.0%} cap")
        return 1

    matching = [b for b in baselines if b.get("hardware_threads") == cur_threads]
    if not matching:
        shapes = sorted(
            b.get("hardware_threads") for b in baselines
        )
        print(
            f"SKIP: no baseline for this machine shape (hardware_threads="
            f"{cur_threads}; baselines exist for {shapes}); wall times are "
            f"not comparable across shapes.\n"
            f"To arm the gate here, run:\n"
            f"    python3 scripts/check_bench_regression.py {args.baseline} "
            f"<fresh run JSON> --add-baseline\n"
            f"and commit the updated {args.baseline} (the bench artifact / "
            f"commit comment JSON is exactly that fresh run)."
        )
        return 0
    baseline = matching[0]

    base = {(p["phase"], p["threads"]): p["seconds"] for p in baseline["phases"]}
    current_keys = {(p["phase"], p["threads"]) for p in current["phases"]}
    # A phase that exists in the baseline but not in the fresh run means a
    # benchmark was dropped or renamed — the gate must not silently pass.
    missing = sorted(k for k in base if k not in current_keys)
    failures = []
    print(f"{'phase':<24} {'threads':>7} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for p in current["phases"]:
        key = (p["phase"], p["threads"])
        seconds = p["seconds"]
        if p["phase"].endswith("_fraction"):
            continue  # a ratio, gated by the absolute caps above
        if key not in base:
            print(f"{key[0]:<24} {key[1]:>7} {'-':>10} {seconds:>10.4f}   (new, no baseline)")
            continue
        allowed = args.max_regression
        if args.parallel_max_regression is not None and p["threads"] > 1:
            allowed = args.parallel_max_regression
        ratio = seconds / base[key] if base[key] > 0 else float("inf")
        note = ""
        # Skip only when both sides sit under the floor — a sub-floor
        # baseline must not excuse a current time well above it.
        if base[key] < args.min_seconds and seconds < args.min_seconds:
            note = "  (below noise floor, not gated)"
        elif seconds > max(base[key], args.min_seconds) * (1.0 + allowed):
            note = "  REGRESSION"
            failures.append((key, base[key], seconds, ratio))
        print(
            f"{key[0]:<24} {key[1]:>7} {base[key]:>10.4f} {seconds:>10.4f} "
            f"{ratio:>6.2f}x{note}"
        )

    if missing:
        print(f"\nFAIL: baseline phase(s) missing from the current run:")
        for phase, threads in missing:
            print(f"  {phase} (threads={threads})")
    if failures:
        print(
            f"\nFAIL: {len(failures)} phase(s) regressed beyond their "
            f"threshold vs {args.baseline} "
            f"(hardware_threads={cur_threads}):"
        )
        for (phase, threads), was, now, ratio in failures:
            print(f"  {phase} (threads={threads}): {was:.4f}s -> {now:.4f}s ({ratio:.2f}x)")
    if failures or missing:
        return 1
    print("\nOK: no phase regressed beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
