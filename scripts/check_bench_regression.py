#!/usr/bin/env python3
"""Gate CI on bench_parallel wall-time regressions.

Compares a fresh bench_parallel JSON against the committed baseline
(BENCH_parallel.json) phase by phase and fails when any phase regressed by
more than --max-regression (default 25%).

Wall times are only comparable on like hardware, so when the current run's
hardware_threads differs from the baseline's recorded value the comparison
is skipped (exit 0) — the baseline was recorded on a different machine
shape and a "regression" would be noise. Phases below --min-seconds in the
baseline are skipped too: at sub-hundredth-of-a-second scale, scheduler
jitter dwarfs any real change. Phases present only in the current run (new
benchmarks without a baseline yet) are reported but never fail.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_parallel.json")
    parser.add_argument("current", help="freshly generated bench JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per phase (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.02,
        help="skip phases whose baseline is below this (noise floor)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_threads = baseline.get("hardware_threads")
    cur_threads = current.get("hardware_threads")
    if base_threads != cur_threads:
        print(
            f"SKIP: baseline recorded on {base_threads} hardware threads, "
            f"this machine has {cur_threads}; wall times are not comparable.\n"
            f"To arm the gate on this machine shape, commit this run's JSON "
            f"(uploaded as the bench artifact / commit comment) as {args.baseline}."
        )
        return 0

    base = {(p["phase"], p["threads"]): p["seconds"] for p in baseline["phases"]}
    current_keys = {(p["phase"], p["threads"]) for p in current["phases"]}
    # A phase that exists in the baseline but not in the fresh run means a
    # benchmark was dropped or renamed — the gate must not silently pass.
    missing = sorted(k for k in base if k not in current_keys)
    failures = []
    print(f"{'phase':<24} {'threads':>7} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for p in current["phases"]:
        key = (p["phase"], p["threads"])
        seconds = p["seconds"]
        if key not in base:
            print(f"{key[0]:<24} {key[1]:>7} {'-':>10} {seconds:>10.4f}   (new, no baseline)")
            continue
        ratio = seconds / base[key] if base[key] > 0 else float("inf")
        note = ""
        # Skip only when both sides sit under the floor — a sub-floor
        # baseline must not excuse a current time well above it.
        if base[key] < args.min_seconds and seconds < args.min_seconds:
            note = "  (below noise floor, not gated)"
        elif seconds > max(base[key], args.min_seconds) * (1.0 + args.max_regression):
            note = "  REGRESSION"
            failures.append((key, base[key], seconds, ratio))
        print(
            f"{key[0]:<24} {key[1]:>7} {base[key]:>10.4f} {seconds:>10.4f} "
            f"{ratio:>6.2f}x{note}"
        )

    if missing:
        print(f"\nFAIL: baseline phase(s) missing from the current run:")
        for phase, threads in missing:
            print(f"  {phase} (threads={threads})")
    if failures:
        print(
            f"\nFAIL: {len(failures)} phase(s) regressed more than "
            f"{args.max_regression:.0%} vs {args.baseline}:"
        )
        for (phase, threads), was, now, ratio in failures:
            print(f"  {phase} (threads={threads}): {was:.4f}s -> {now:.4f}s ({ratio:.2f}x)")
    if failures or missing:
        return 1
    print("\nOK: no phase regressed beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
