#!/usr/bin/env python3
"""Validate paris_align --trace-json / --metrics-json output.

Checks that the trace is well-formed Chrome trace-event JSON whose shard
spans cover every (iteration, pass) contiguously from shard 0, and that the
metrics JSON has the registry schema (histogram counts = bounds + 1) with
internally consistent per-iteration convergence telemetry. Prints a
one-line summary (also written to --summary, for the CI commit comment).

    check_trace.py TRACE.json [METRICS.json] [--summary OUT.txt]
"""

import argparse
import json
import sys


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    if trace.get("displayTimeUnit") != "ms":
        fail("missing displayTimeUnit")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = 0
    shards = {}  # (iteration, pass name) -> set of shard ids
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") != "thread_name" or "tid" not in event:
                fail(f"malformed metadata event: {event}")
            continue
        if ph != "X":
            fail(f"unexpected event phase {ph!r}")
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"complete event missing {key!r}: {event}")
        if event["dur"] < 0 or event["ts"] < 0:
            fail(f"negative timestamp: {event}")
        spans += 1
        args = event.get("args", {})
        if event["cat"] == "shard":
            key = (args.get("iteration", 0), event["name"])
            shards.setdefault(key, set()).add(args["shard"])

    if not shards:
        fail("no shard spans recorded")
    for (iteration, name), ids in sorted(shards.items()):
        expected = set(range(len(ids)))
        if ids != expected:
            fail(
                f"iteration {iteration} {name} pass: shard spans not "
                f"contiguous from 0: {sorted(ids)}"
            )
    return spans, shards


def check_metrics(path):
    with open(path) as f:
        metrics = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics missing {section!r} object")
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"counter {name!r} is not a non-negative integer")
    for name, histogram in metrics["histograms"].items():
        bounds = histogram.get("bounds")
        counts = histogram.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(f"histogram {name!r} missing bounds/counts")
        if len(counts) != len(bounds) + 1:
            fail(f"histogram {name!r}: {len(counts)} counts for "
                 f"{len(bounds)} bounds")
        if sorted(bounds) != bounds:
            fail(f"histogram {name!r}: bounds not ascending")

    iterations = metrics.get("iterations")
    if not isinstance(iterations, list):
        fail("metrics missing iterations array")
    for it in iterations:
        moved = it["changed"] + it["gained"] + it["dropped"]
        if sum(it["shard_changed"]) != moved:
            fail(f"iteration {it['iteration']}: shard_changed sums to "
                 f"{sum(it['shard_changed'])}, expected {moved}")
        delta = it["score_delta"]
        if len(delta["counts"]) != len(delta["bounds"]) + 1:
            fail(f"iteration {it['iteration']}: score_delta shape")
        if sum(delta["counts"]) != it["stable"] + it["changed"]:
            fail(f"iteration {it['iteration']}: score_delta sums to "
                 f"{sum(delta['counts'])}, expected "
                 f"{it['stable'] + it['changed']}")
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("metrics", nargs="?")
    parser.add_argument("--summary", help="also write the summary line here")
    args = parser.parse_args()

    spans, shards = check_trace(args.trace)
    passes = len(shards)
    summary = f"trace OK: {spans} spans, {passes} (iteration, pass) groups"

    if args.metrics:
        metrics = check_metrics(args.metrics)
        iterations = metrics["iterations"]
        aligned = metrics["gauges"].get("run.instances_aligned", 0)
        moved_last = (
            iterations[-1]["changed"]
            + iterations[-1]["gained"]
            + iterations[-1]["dropped"]
            if iterations
            else 0
        )
        summary += (
            f"; metrics OK: {len(metrics['counters'])} counters, "
            f"{len(iterations)} iterations, {aligned} aligned, "
            f"{moved_last} moved in last iteration"
        )

    print(summary)
    if args.summary:
        with open(args.summary, "w") as f:
            f.write(summary + "\n")


if __name__ == "__main__":
    main()
